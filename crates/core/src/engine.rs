//! The TER-iDS processing engine (Algorithms 1 and 2).
//!
//! Per arriving tuple:
//!
//! 1. **Expiry** — the tuple leaving the window is evicted from the
//!    ER-grid and its pairs removed from the result set (lines 2–7).
//! 2. **Imputation** — applicable CDD rules are selected through the
//!    CDD-indexes, matching samples retrieved through the DR-index, and
//!    the imputed probabilistic tuple assembled (line 9's
//!    `I_j ⋈ I_R` side; both phases timed separately for Figure 6).
//! 3. **Candidate retrieval** — the ER-grid is traversed with cell-level
//!    topic/similarity pruning (the `⋈ G_ER` side of the 3-way join);
//!    surviving cells surface candidate tuples (lines 9, 14–25).
//! 4. **Pair pruning & refinement** — Theorems 4.1 → 4.2 → 4.3 in order,
//!    then Theorem 4.4 early-terminated exact refinement; survivors enter
//!    the result set (lines 15–26).

use std::time::Instant;

use ter_impute::{ImputeConfig, RuleImputer, RuleRetrieval};
use ter_index::RegionGrid;
use ter_repo::{DrIndex, PivotConfig, PivotTable, Repository};
use ter_rules::{detect_cdds, detect_dds, detect_editing_rules, Cdd, CddIndex, DiscoveryConfig};
use ter_stream::{Arrival, ProbTuple, SlidingWindow};
use ter_text::fxhash::{FxHashMap, FxHashSet};
use ter_text::KeywordSet;

use crate::candidates;
use crate::meta::{AuxLayout, ErAggregate, TupleMeta};
use crate::metrics::{PhaseTiming, PruneStats};
use crate::params::Params;
pub use crate::params::PruningMode;
use crate::pruning;
use crate::refine::{decide_pair, PairContext, PairDecision};
use crate::results::{norm_pair, ResultSet};
use crate::state::EngineState;
use crate::ErProcessor;

/// Everything built in the offline pre-computation phase (Algorithm 1
/// lines 1–4): pivots, rules (CDD + the baselines' DD/editing rules),
/// CDD-indexes, and the DR-index. Engines borrow from one context, so one
/// dataset's pre-computation is shared across all compared methods.
pub struct TerContext {
    /// The static complete repository `R`.
    pub repo: Repository,
    /// Selected pivots (§5.4).
    pub pivots: PivotTable,
    /// Auxiliary-pivot slot layout.
    pub layout: AuxLayout,
    /// Auxiliary-pivot counts per attribute (pruning input).
    pub aux_counts: Vec<usize>,
    /// Discovered CDD rules.
    pub cdds: Vec<Cdd>,
    /// Discovered DD rules (for the `DD+ER` baseline).
    pub dds: Vec<Cdd>,
    /// Discovered editing rules (for the `er+ER` baseline).
    pub editing_rules: Vec<Cdd>,
    /// One CDD-index `I_j` per attribute.
    pub cdd_indexes: Vec<CddIndex>,
    /// The DR-index `I_R`.
    pub dr_index: DrIndex,
    /// Query topic keywords `K`.
    pub keywords: KeywordSet,
}

impl TerContext {
    /// Runs the offline pre-computation phase.
    pub fn build(
        repo: Repository,
        keywords: KeywordSet,
        pivot_cfg: &PivotConfig,
        discovery_cfg: &DiscoveryConfig,
        fanout: usize,
    ) -> Self {
        let pivots = PivotTable::select(&repo, pivot_cfg);
        let layout = AuxLayout::new(&pivots);
        let aux_counts = (0..pivots.arity()).map(|j| pivots.aux_count(j)).collect();
        let cdds = detect_cdds(&repo, discovery_cfg);
        let dds = detect_dds(&repo, discovery_cfg);
        let editing_rules = detect_editing_rules(&repo, discovery_cfg);
        let d = repo.schema().arity();
        let cdd_indexes = (0..d).map(|j| CddIndex::build(j, &cdds, &pivots)).collect();
        let dr_index = DrIndex::build(&repo, &pivots, &keywords, fanout);
        Self {
            repo,
            pivots,
            layout,
            aux_counts,
            cdds,
            dds,
            editing_rules,
            cdd_indexes,
            dr_index,
            keywords,
        }
    }

    /// Arity `d` of the schema.
    pub fn arity(&self) -> usize {
        self.repo.schema().arity()
    }

    /// Builds the CDD-indexed rule imputer that every TER-iDS engine
    /// (sequential or sharded) drives over this context. Imputation is a
    /// pure function of the context and the arriving record, which is what
    /// lets the batch-parallel engine impute a whole batch concurrently
    /// while staying bit-identical to the sequential engine.
    pub fn indexed_imputer(&self, cfg: ImputeConfig) -> RuleImputer<'_> {
        RuleImputer::new(
            "CDD-indexed",
            &self.repo,
            &self.pivots,
            &self.cdds,
            RuleRetrieval::Indexed {
                cdd_indexes: &self.cdd_indexes,
                dr_index: &self.dr_index,
            },
            cfg,
        )
    }
}

/// Output of processing one arrival.
///
/// Together, `new_matches` / `retractions` / `expired` are the step's
/// **window delta**: folding them over any prior state reproduces the
/// engine's live result set and window membership exactly. The standing
/// query layer subscribes to this stream and must stay bit-identical to
/// a from-scratch evaluation after every step, so all three lists are
/// deterministic functions of the arrival order — identical across the
/// sequential and sharded engines.
#[derive(Debug, Clone, Default)]
pub struct StepOutput {
    /// Pairs newly reported at this timestamp, `(min, max)`-normalized and
    /// sorted — identical across the sequential and sharded engines.
    pub new_matches: Vec<(u64, u64)>,
    /// Pairs removed from the live result set by this step's expiry,
    /// `(min, max)`-normalized and sorted.
    pub retractions: Vec<(u64, u64)>,
    /// Tuples the window evicted at this step (at most one under the
    /// count-based window).
    pub expired: Vec<u64>,
    /// Phase timing of this step.
    pub timing: PhaseTiming,
}

/// The TER-iDS engine. See the [module docs](self).
pub struct TerIdsEngine<'a> {
    ctx: &'a TerContext,
    params: Params,
    mode: PruningMode,
    gamma: f64,
    imputer: RuleImputer<'a>,
    grid: RegionGrid<u64, ErAggregate>,
    window: SlidingWindow<u64>,
    metas: FxHashMap<u64, TupleMeta>,
    /// Live tuple count per stream (for O(1) candidate-pair accounting).
    stream_counts: Vec<usize>,
    /// Live tuples with `possibly_topical = true` — the inverted list
    /// realizing Theorem 4.1: a non-topical arrival can only match a
    /// topical counterpart, so only this (small) set is ever examined.
    topical_ids: FxHashSet<u64>,
    results: ResultSet,
    reported: FxHashSet<(u64, u64)>,
    stats: PruneStats,
    timing: PhaseTiming,
    name: &'static str,
}

impl<'a> TerIdsEngine<'a> {
    /// Creates an engine over a prebuilt context.
    pub fn new(ctx: &'a TerContext, params: Params, mode: PruningMode) -> Self {
        params.validate().expect("invalid parameters");
        let d = ctx.arity();
        let imputer = ctx.indexed_imputer(params.impute);
        Self {
            ctx,
            params,
            mode,
            gamma: params.gamma(d),
            imputer,
            grid: RegionGrid::new(d, params.grid_cells),
            window: SlidingWindow::new(params.window),
            metas: FxHashMap::default(),
            stream_counts: Vec::new(),
            topical_ids: FxHashSet::default(),
            results: ResultSet::new(),
            reported: FxHashSet::default(),
            stats: PruneStats::default(),
            timing: PhaseTiming::default(),
            name: match mode {
                PruningMode::Full => "TER-iDS",
                PruningMode::GridOnly => "Ij+GER",
            },
        }
    }

    /// The similarity threshold `γ = ρ · d` in use.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of unexpired tuples.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Window capacity `w`.
    pub fn window_capacity(&self) -> usize {
        self.params.window
    }

    /// Metadata of a live tuple.
    pub fn meta(&self, id: u64) -> Option<&TupleMeta> {
        self.metas.get(&id)
    }

    /// Ids of the unexpired tuples, ascending (for differential tests
    /// against the batch-parallel engine).
    pub fn live_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.metas.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Snapshots the engine's dynamic state in the canonical
    /// [`EngineState`] representation (window order, sorted pairs, sorted
    /// cell keys). The sharded engine exports an *equal* state at the same
    /// stream position, so checkpoints are portable across engines.
    pub fn export_state(&self) -> EngineState {
        let window: Vec<(u64, u64)> = self.window.iter().map(|(t, id)| (t, *id)).collect();
        let metas = window
            .iter()
            .map(|(_, id)| self.metas[id].clone())
            .collect();
        let mut results: Vec<(u64, u64)> = self.results.iter().collect();
        results.sort_unstable();
        let mut reported: Vec<(u64, u64)> = self.reported.iter().copied().collect();
        reported.sort_unstable();
        let mut cells: Vec<(ter_index::CellKey, Vec<u64>)> = self
            .grid
            .iter_cells()
            .map(|(k, entries)| (k.clone(), entries.iter().map(|e| e.payload).collect()))
            .collect();
        cells.sort_by(|(a, _), (b, _)| a.cmp(b));
        EngineState {
            window_capacity: self.params.window,
            grid_cells: self.params.grid_cells,
            window,
            metas,
            stream_counts: self.stream_counts.clone(),
            results,
            reported,
            stats: self.stats,
            cells,
        }
    }

    /// Replaces the engine's dynamic state with a validated snapshot
    /// (recovery: load the newest checkpoint, then replay the WAL suffix
    /// through [`ErProcessor::step_batch`]). The static context, params,
    /// and pruning mode stay as constructed; phase timings restart at zero
    /// (wall clock is not recoverable state). On `Err` the engine is left
    /// untouched — the recovery path must never panic or half-apply.
    pub fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        let d = self.ctx.arity();
        state.validate(d, self.params.window, self.params.grid_cells)?;
        let mut metas: FxHashMap<u64, TupleMeta> = FxHashMap::default();
        let mut topical_ids: FxHashSet<u64> = FxHashSet::default();
        for meta in &state.metas {
            if meta.possibly_topical {
                topical_ids.insert(meta.id);
            }
            metas.insert(meta.id, meta.clone());
        }
        let mut grid = RegionGrid::new(d, self.params.grid_cells);
        for (key, ids) in &state.cells {
            for id in ids {
                let meta = &metas[id];
                grid.insert_at([key.clone()], &meta.region(), *id, meta.aggregate());
            }
        }
        let mut window = SlidingWindow::new(self.params.window);
        for &(ts, id) in &state.window {
            // validate() bounds the length by the capacity and checks
            // monotonic timestamps, so no push can evict or assert.
            window.push(ts, id);
        }
        let mut results = ResultSet::new();
        for &(a, b) in &state.results {
            results.insert(a, b);
        }
        self.grid = grid;
        self.window = window;
        self.metas = metas;
        self.stream_counts = state.stream_counts.clone();
        self.topical_ids = topical_ids;
        self.results = results;
        self.reported = state.reported.iter().copied().collect();
        self.stats = state.stats;
        self.timing = PhaseTiming::default();
        Ok(())
    }

    /// Evicts the expired tuple from grid, metadata, and result set;
    /// returns the live pairs the eviction dropped, normalized and sorted
    /// (the step's retraction delta).
    fn expire(&mut self, old_id: u64) -> Vec<(u64, u64)> {
        if let Some(meta) = self.metas.remove(&old_id) {
            self.grid.evict(&meta.region(), &old_id);
            let removed = self.results.remove_involving(old_id);
            self.stream_counts[meta.stream_id] -= 1;
            self.topical_ids.remove(&old_id);
            removed
        } else {
            Vec::new()
        }
    }

    /// Cell keys currently holding at least one live tuple, with their
    /// entry counts — the density statistic the query planner's greedy
    /// join-order heuristic reads instead of maintaining histograms.
    pub fn cell_entry_counts(&self) -> Vec<usize> {
        self.grid
            .iter_cells()
            .map(|(_, entries)| entries.len())
            .collect()
    }

    /// Live tuple count per stream id.
    pub fn stream_tuple_counts(&self) -> &[usize] {
        &self.stream_counts
    }

    /// Number of live tuples currently flagged possibly-topical.
    pub fn topical_count(&self) -> usize {
        self.topical_ids.len()
    }
}

impl ErProcessor for TerIdsEngine<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn process(&mut self, arrival: &Arrival) -> StepOutput {
        let mut step_timing = PhaseTiming {
            arrivals: 1,
            ..PhaseTiming::default()
        };

        // ---- expiry (Algorithm 2 lines 2–7) ----
        let er_start = Instant::now();
        let mut retractions = Vec::new();
        let mut expired = Vec::new();
        if let Some((_, old_id)) = self.window.push(arrival.timestamp, arrival.record.id) {
            expired.push(old_id);
            retractions = self.expire(old_id);
        }
        step_timing.er += er_start.elapsed();

        // ---- imputation (line 9, the I_j ⋈ I_R side) ----
        let pt = if arrival.record.is_complete() {
            ProbTuple::certain(arrival.record.clone())
        } else {
            let t = Instant::now();
            let selected = self.imputer.select_rules(&arrival.record);
            step_timing.rule_selection += t.elapsed();
            let t = Instant::now();
            let pt = self.imputer.impute_with_rules(&arrival.record, &selected);
            step_timing.imputation += t.elapsed();
            pt
        };
        let t = Instant::now();
        let meta = TupleMeta::build(
            arrival.record.id,
            arrival.stream_id,
            arrival.timestamp,
            pt,
            &self.ctx.pivots,
            &self.ctx.layout,
            &self.ctx.keywords,
        );

        // ---- candidate retrieval through the ER-grid ----
        let gamma = self.gamma;
        let aux_counts = &self.ctx.aux_counts;
        let mut surfaced: FxHashSet<u64> = FxHashSet::default();
        self.grid.traverse(
            |_rect, agg| pruning::cell_survives(&meta, agg, gamma, aux_counts),
            |entry| {
                surfaced.insert(entry.payload);
            },
        );

        // ---- pair-level pruning + refinement ----
        // Candidate pairs = live tuples of *other* streams (the problem
        // statement pairs tuples "from two of n data streams"); selection,
        // Theorem 4.1's inverted list, and the bulk attribution of pairs
        // in pruned-out cells live in [`candidates`], shared with the
        // sharded engine.
        let cands =
            candidates::examined_candidates(&meta, &surfaced, &self.topical_ids, &self.metas);
        let examined = cands.len() as u64;

        let pair_ctx = PairContext {
            keywords: &self.ctx.keywords,
            gamma,
            alpha: self.params.alpha,
            aux_counts,
            mode: self.mode,
        };
        let mut new_matches = Vec::new();
        for other in cands {
            match decide_pair(&meta, other, &pair_ctx) {
                PairDecision::SimPruned => self.stats.sim += 1,
                PairDecision::ProbPruned => self.stats.prob += 1,
                PairDecision::InstancePruned => self.stats.instance += 1,
                PairDecision::Match => {
                    self.stats.matches += 1;
                    new_matches.push(norm_pair(meta.id, other.id));
                }
            }
        }
        candidates::account_pairs(
            &meta,
            examined,
            &self.stream_counts,
            &self.topical_ids,
            &self.metas,
            &mut self.stats,
        );
        // Candidates are examined in ascending-id order and pairs are
        // normalized, so a step's match list is a deterministic function
        // of the arrival order — directly comparable with the sharded
        // engine's merged output.
        new_matches.sort_unstable();
        for &(a, b) in &new_matches {
            self.results.insert(a, b);
            self.reported.insert((a, b));
        }

        // ---- register the new tuple (lines 11–13) ----
        self.grid.insert(meta.region(), meta.id, meta.aggregate());
        if self.stream_counts.len() <= meta.stream_id {
            self.stream_counts.resize(meta.stream_id + 1, 0);
        }
        self.stream_counts[meta.stream_id] += 1;
        if meta.possibly_topical {
            self.topical_ids.insert(meta.id);
        }
        let prev = self.metas.insert(meta.id, meta);
        assert!(prev.is_none(), "duplicate tuple id {}", arrival.record.id);
        step_timing.er += t.elapsed();

        self.timing.accumulate(&step_timing);
        StepOutput {
            new_matches,
            retractions,
            expired,
            timing: step_timing,
        }
    }

    fn results(&self) -> &ResultSet {
        &self.results
    }

    fn reported(&self) -> &FxHashSet<(u64, u64)> {
        &self.reported
    }

    fn prune_stats(&self) -> PruneStats {
        self.stats
    }

    fn timing(&self) -> PhaseTiming {
        self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::{Record, Schema};
    use ter_stream::StreamSet;
    use ter_text::Dictionary;

    /// Builds a small 2-stream scenario with an obvious match.
    fn scenario() -> (TerContext, StreamSet, Dictionary) {
        let schema = Schema::new(vec!["title", "tags"]);
        let mut dict = Dictionary::new();
        let mut repo_recs = Vec::new();
        // Near-duplicate repository pairs so that discovery finds a tight
        // title→tags rule (close titles ⇒ identical tags).
        let repo_rows = [
            ("space cowboy adventure", "scifi western"),
            ("space cowboy adventure saga", "scifi western"),
            ("high school romance", "drama comedy"),
            ("high school romance club", "drama comedy"),
            ("cooking master", "comedy food"),
            ("idol music live", "music idol"),
        ];
        for (i, (a, b)) in repo_rows.iter().enumerate() {
            repo_recs.push(Record::from_texts(
                &schema,
                1000 + i as u64,
                &[Some(a), Some(b)],
                &mut dict,
            ));
        }
        let repo = Repository::from_records(schema.clone(), repo_recs);
        let keywords = KeywordSet::parse("scifi", &dict);
        let ctx = TerContext::build(
            repo,
            keywords,
            &PivotConfig::default(),
            &DiscoveryConfig {
                min_support: 2,
                min_constant_support: 2,
                ..DiscoveryConfig::default()
            },
            16,
        );

        // Stream A and stream B share one entity ("space cowboy adventure").
        let s0 = vec![
            Record::from_texts(
                &schema,
                1,
                &[Some("space cowboy adventure"), Some("scifi western")],
                &mut dict,
            ),
            Record::from_texts(
                &schema,
                3,
                &[Some("cooking master"), Some("comedy food")],
                &mut dict,
            ),
        ];
        let s1 = vec![
            Record::from_texts(
                &schema,
                2,
                &[Some("space cowboy adventure"), Some("scifi western")],
                &mut dict,
            ),
            Record::from_texts(
                &schema,
                4,
                &[Some("idol music live"), Some("music idol")],
                &mut dict,
            ),
        ];
        (ctx, StreamSet::new(vec![s0, s1]), dict)
    }

    #[test]
    fn finds_the_obvious_cross_stream_match() {
        let (ctx, streams, _) = scenario();
        let mut engine = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
        let mut all = Vec::new();
        for a in streams.arrivals() {
            all.extend(engine.process(&a).new_matches);
        }
        assert!(all.contains(&(1, 2)), "matches: {all:?}");
        // The non-topical cooking/idol tuples must not match anything.
        assert_eq!(all.len(), 1);
        assert!(engine.results().contains(1, 2));
    }

    #[test]
    fn grid_only_mode_agrees_on_results() {
        let (ctx, streams, _) = scenario();
        let mut full = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
        let mut grid_only = TerIdsEngine::new(&ctx, Params::default(), PruningMode::GridOnly);
        for a in streams.arrivals() {
            full.process(&a);
            grid_only.process(&a);
        }
        let mut r1: Vec<_> = full.reported().iter().copied().collect();
        let mut r2: Vec<_> = grid_only.reported().iter().copied().collect();
        r1.sort_unstable();
        r2.sort_unstable();
        assert_eq!(r1, r2);
    }

    #[test]
    fn expiry_removes_results() {
        let (ctx, streams, _) = scenario();
        let params = Params {
            window: 2,
            ..Params::default()
        };
        let mut engine = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        let arrivals = streams.arrivals();
        // t0: tuple 1 (s0), t1: tuple 2 (s1) → match (1,2) with w=2.
        engine.process(&arrivals[0]);
        engine.process(&arrivals[1]);
        assert!(engine.results().contains(1, 2));
        // t2: tuple 3 arrives, tuple 1 expires → pair (1,2) leaves ES.
        engine.process(&arrivals[2]);
        assert!(!engine.results().contains(1, 2));
        // But it stays in the reported history.
        assert!(engine.reported().contains(&(1, 2)));
        assert_eq!(engine.window_len(), 2);
    }

    #[test]
    fn incomplete_tuple_is_imputed_and_matched() {
        let (ctx, _, mut dict) = scenario();
        let schema = Schema::new(vec!["title", "tags"]);
        // Tags missing — imputation from the repository should still let it
        // match its complete twin (repo contains the same entity).
        let s0 = vec![Record::from_texts(
            &schema,
            1,
            &[Some("space cowboy adventure"), Some("scifi western")],
            &mut dict,
        )];
        let s1 = vec![Record::from_texts(
            &schema,
            2,
            &[Some("space cowboy adventure"), None],
            &mut dict,
        )];
        let streams = StreamSet::new(vec![s0, s1]);
        let params = Params {
            rho: 0.55, // γ = 1.1: title match alone (1.0) is not enough
            ..Params::default()
        };
        let mut engine = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        let mut all = Vec::new();
        for a in streams.arrivals() {
            all.extend(engine.process(&a).new_matches);
        }
        assert!(
            all.contains(&(1, 2)),
            "imputed tuple failed to match: {all:?}"
        );
    }

    #[test]
    fn stats_account_for_every_pair() {
        let (ctx, streams, _) = scenario();
        let mut engine = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
        for a in streams.arrivals() {
            engine.process(&a);
        }
        let s = engine.prune_stats();
        assert_eq!(
            s.topic + s.sim + s.prob + s.instance + s.matches,
            s.total_pairs,
            "stats must partition the candidate pairs: {s:?}"
        );
        assert!(s.total_pairs > 0);
    }

    #[test]
    fn timing_is_recorded() {
        let (ctx, streams, _) = scenario();
        let mut engine = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
        for a in streams.arrivals() {
            engine.process(&a);
        }
        let t = engine.timing();
        assert_eq!(t.arrivals, 4);
        assert!(t.total().as_nanos() > 0);
    }

    /// Export at every prefix, import into a fresh engine, continue — the
    /// restored run must be bit-identical to the uninterrupted one.
    #[test]
    fn state_round_trip_resumes_identically() {
        let (ctx, streams, _) = scenario();
        let params = Params {
            window: 2, // small window so cuts straddle eviction boundaries
            ..Params::default()
        };
        let arrivals = streams.arrivals();
        let mut oracle = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        let oracle_steps: Vec<Vec<(u64, u64)>> = arrivals
            .iter()
            .map(|a| oracle.process(a).new_matches)
            .collect();
        for cut in 0..arrivals.len() {
            let mut first = TerIdsEngine::new(&ctx, params, PruningMode::Full);
            for a in &arrivals[..cut] {
                first.process(a);
            }
            let state = first.export_state();
            let mut second = TerIdsEngine::new(&ctx, params, PruningMode::Full);
            second.import_state(&state).unwrap();
            assert_eq!(second.export_state(), state, "cut {cut}: re-export drifted");
            for (i, a) in arrivals[cut..].iter().enumerate() {
                assert_eq!(
                    second.process(a).new_matches,
                    oracle_steps[cut + i],
                    "cut {cut}: step {} diverged",
                    cut + i
                );
            }
            assert_eq!(second.export_state(), oracle.export_state(), "cut {cut}");
        }
    }

    #[test]
    fn import_rejects_mismatched_window() {
        let (ctx, streams, _) = scenario();
        let mut engine = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
        for a in streams.arrivals() {
            engine.process(&a);
        }
        let state = engine.export_state();
        let mut other = TerIdsEngine::new(
            &ctx,
            Params {
                window: 7,
                ..Params::default()
            },
            PruningMode::Full,
        );
        assert!(other.import_state(&state).is_err());
        // A different grid resolution is refused too — the persisted cell
        // keys would land in wrong rectangles.
        let mut coarse = TerIdsEngine::new(
            &ctx,
            Params {
                grid_cells: 11,
                ..Params::default()
            },
            PruningMode::Full,
        );
        assert!(coarse.import_state(&state).is_err());
        // The failed import must leave the engine untouched and usable.
        assert_eq!(other.window_len(), 0);
        for a in streams.arrivals() {
            other.process(&a);
        }
        assert!(other.results().contains(1, 2));
    }
}
