//! Property tests: the pruning rules of §4 must be *sound* — an upper
//! bound below the threshold must imply the exact quantity is too —
//! verified against exhaustive instance enumeration on random imputed
//! tuples.

use proptest::prelude::*;

use ter_repo::{PivotConfig, PivotTable, Record, Repository, Schema};
use ter_stream::{AttrCandidates, ProbTuple};
use ter_text::{Dictionary, KeywordSet, Token, TokenSet};

use crate::meta::{AuxLayout, TupleMeta};
use crate::pruning;
use crate::refine::{exact_probability, refine_pair, Refinement};

/// A compact fixture: vocabulary of 40 tokens, 2-attribute schema,
/// repository of token-set samples to select pivots from.
struct Fx {
    pivots: PivotTable,
    layout: AuxLayout,
}

fn fixture() -> Fx {
    let schema = Schema::new(vec!["a", "b"]);
    let mut dict = Dictionary::new();
    let recs: Vec<Record> = (0..12u64)
        .map(|i| {
            let t1 = format!("w{} w{} w{}", i % 7, (i * 3) % 11, (i * 5) % 13);
            let t2 = format!("w{} w{}", (i * 2) % 9, (i * 7) % 11);
            Record::from_texts(&schema, i, &[Some(&t1), Some(&t2)], &mut dict)
        })
        .collect();
    let repo = Repository::from_records(schema, recs);
    let pivots = PivotTable::select(&repo, &PivotConfig::default());
    let layout = AuxLayout::new(&pivots);
    Fx { pivots, layout }
}

fn arb_tokenset() -> impl Strategy<Value = TokenSet> {
    proptest::collection::vec(0u32..40, 1..6)
        .prop_map(|v| TokenSet::new(v.into_iter().map(Token).collect()))
}

/// A random imputed tuple over the 2-attribute schema: attribute 0 is
/// always present; attribute 1 is either present or imputed with 1–3
/// candidates.
fn arb_prob_tuple(id: u64) -> impl Strategy<Value = (TokenSet, Vec<(TokenSet, f64)>)> {
    (
        arb_tokenset(),
        proptest::collection::vec((arb_tokenset(), 1u32..5), 1..4),
    )
        .prop_map(|(a0, cands)| {
            (
                a0,
                cands
                    .into_iter()
                    .map(|(ts, w)| (ts, w as f64))
                    .collect::<Vec<_>>(),
            )
        })
        .prop_map(move |x| {
            let _ = id;
            x
        })
}

fn build_meta(fx: &Fx, id: u64, a0: TokenSet, cands: Vec<(TokenSet, f64)>) -> TupleMeta {
    let schema = Schema::new(vec!["a", "b"]);
    let base = Record::new(&schema, id, vec![Some(a0), None]);
    let pt = ProbTuple::new(base, vec![AttrCandidates::normalized(1, cands)]);
    TupleMeta::build(
        id,
        (id % 2) as usize,
        id,
        pt,
        &fx.pivots,
        &fx.layout,
        &KeywordSet::universe(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 4.1 + Lemma 4.2 (`ub_sim`): never below any instance pair's
    /// true similarity.
    #[test]
    fn similarity_upper_bound_is_sound(
        ta in arb_prob_tuple(1),
        tb in arb_prob_tuple(2),
    ) {
        let fx = fixture();
        let a = build_meta(&fx, 1, ta.0, ta.1);
        let b = build_meta(&fx, 2, tb.0, tb.1);
        let aux_counts: Vec<usize> =
            (0..fx.pivots.arity()).map(|j| fx.pivots.aux_count(j)).collect();
        let ub = pruning::ub_sim(&a, &b, &aux_counts);
        for ia in a.tuple.instances() {
            for ib in b.tuple.instances() {
                let s = ia.similarity(&ib);
                prop_assert!(ub >= s - 1e-9, "ub {ub} < instance sim {s}");
            }
        }
    }

    /// Lemma 4.3: the Paley–Zygmund bound dominates the exact probability
    /// for every γ.
    #[test]
    fn probability_upper_bound_is_sound(
        ta in arb_prob_tuple(1),
        tb in arb_prob_tuple(2),
        gamma_pct in 5u32..95,
    ) {
        let fx = fixture();
        let a = build_meta(&fx, 1, ta.0, ta.1);
        let b = build_meta(&fx, 2, tb.0, tb.1);
        let gamma = 2.0 * gamma_pct as f64 / 100.0;
        let kw = KeywordSet::universe();
        let exact = exact_probability(&a, &b, &kw, gamma);
        let ub = pruning::prob_upper_bound(&a, &b, gamma);
        prop_assert!(ub >= exact - 1e-9, "ub {ub} < exact {exact} at γ={gamma}");
    }

    /// Theorem 4.4 refinement decides exactly like full enumeration.
    #[test]
    fn refinement_decision_is_exact(
        ta in arb_prob_tuple(1),
        tb in arb_prob_tuple(2),
        alpha_pct in 0u32..100,
        gamma_pct in 5u32..95,
    ) {
        let fx = fixture();
        let a = build_meta(&fx, 1, ta.0, ta.1);
        let b = build_meta(&fx, 2, tb.0, tb.1);
        let alpha = alpha_pct as f64 / 100.0;
        let gamma = 2.0 * gamma_pct as f64 / 100.0;
        let kw = KeywordSet::universe();
        let exact = exact_probability(&a, &b, &kw, gamma);
        let decision = refine_pair(&a, &b, &kw, gamma, alpha);
        let is_match = matches!(decision, Refinement::Match(_));
        prop_assert_eq!(is_match, exact > alpha,
            "exact={} alpha={} decision={:?}", exact, alpha, decision);
    }

    /// A pruned pair (any of the three cheap rules) must have exact
    /// probability ≤ α — pruning soundness end to end.
    #[test]
    fn cheap_prunes_never_lose_matches(
        ta in arb_prob_tuple(1),
        tb in arb_prob_tuple(2),
        alpha_pct in 5u32..95,
    ) {
        let fx = fixture();
        let a = build_meta(&fx, 1, ta.0, ta.1);
        let b = build_meta(&fx, 2, tb.0, tb.1);
        let gamma = 1.0;
        let alpha = alpha_pct as f64 / 100.0;
        let kw = KeywordSet::universe();
        let aux_counts: Vec<usize> =
            (0..fx.pivots.arity()).map(|j| fx.pivots.aux_count(j)).collect();
        let exact = exact_probability(&a, &b, &kw, gamma);
        if pruning::sim_prunable(&a, &b, gamma, &aux_counts) {
            prop_assert!(exact <= 1e-12, "sim-pruned pair has Pr={exact}");
        }
        if pruning::prob_prunable(&a, &b, gamma, alpha) {
            prop_assert!(exact <= alpha + 1e-9, "prob-pruned pair has Pr={exact} > α={alpha}");
        }
    }

    /// Topic pruning soundness: if `topic_prunable`, no instance pair can
    /// satisfy the keyword predicate.
    #[test]
    fn topic_prune_is_sound(
        ta in arb_prob_tuple(1),
        tb in arb_prob_tuple(2),
        kw_tokens in proptest::collection::vec(0u32..40, 1..4),
    ) {
        let fx = fixture();
        let schema = Schema::new(vec!["a", "b"]);
        let kw = KeywordSet::new(TokenSet::new(
            kw_tokens.into_iter().map(Token).collect(),
        ));
        let mk = |id: u64, t: &(TokenSet, Vec<(TokenSet, f64)>)| {
            let base = Record::new(&schema, id, vec![Some(t.0.clone()), None]);
            let pt = ProbTuple::new(base, vec![AttrCandidates::normalized(1, t.1.clone())]);
            TupleMeta::build(id, (id % 2) as usize, id, pt, &fx.pivots, &fx.layout, &kw)
        };
        let a = mk(1, &ta);
        let b = mk(2, &tb);
        if pruning::topic_prunable(&a, &b) {
            let exact = exact_probability(&a, &b, &kw, 0.0);
            prop_assert!(exact <= 1e-12, "topic-pruned pair has Pr={exact}");
        }
    }
}
