//! The pruning strategies of §4 (Theorems 4.1–4.3, Lemmas 4.1–4.3).
//!
//! All functions here are *sound*: they may fail to prune, but they never
//! prune a pair that could satisfy the TER-iDS predicate (property-tested
//! against exhaustive instance enumeration in `proptests.rs`).

use ter_text::Interval;

use crate::meta::{ErAggregate, TupleMeta};

/// Cell-level pruning predicate: Theorems 4.1 and 4.2 evaluated on a grid
/// cell's merged aggregate. Cell aggregates are supersets of per-tuple
/// bounds, so a pruned cell can only contain pair-level-prunable tuples
/// (soundness is preserved). Shared by the sequential engine and the
/// per-shard traversal of the batch-parallel engine (`ter_exec`): both
/// must take identical cell-level decisions for bit-identical statistics.
#[allow(clippy::needless_range_loop)] // k indexes four parallel arrays
pub fn cell_survives(
    meta: &TupleMeta,
    agg: &ErAggregate,
    gamma: f64,
    aux_counts: &[usize],
) -> bool {
    // Topic: if the new tuple can't be topical and nothing in the cell
    // can be either, no pair from this cell can qualify.
    if !meta.possibly_topical && !agg.topics.any() {
        return false;
    }
    // Similarity UB via pivot gaps + token sizes against the cell.
    let d = meta.arity() as f64;
    let mut gap_sum = 0.0;
    let mut size_ub = 0.0;
    let mut aux_off = 0;
    for k in 0..meta.arity() {
        let mut gap = meta.main_bounds[k].min_gap(&agg.main[k]);
        for s in 0..aux_counts[k] {
            let slot = aux_off + s;
            gap = gap.max(meta.aux_bounds[slot].min_gap(&agg.aux[slot]));
        }
        aux_off += aux_counts[k];
        gap_sum += gap;
        size_ub += ub_sim_attr_size(&meta.size_bounds[k], &agg.sizes[k]);
    }
    (d - gap_sum).min(size_ub) > gamma
}

/// Theorem 4.1 (topic keyword pruning): the pair can be pruned iff *no*
/// instance of either imputed tuple can contain a query keyword.
#[inline]
pub fn topic_prunable(a: &TupleMeta, b: &TupleMeta) -> bool {
    !a.possibly_topical && !b.possibly_topical
}

/// Lemma 4.1: per-attribute similarity upper bound from token-set sizes.
///
/// With `|T⁻|`/`|T⁺|` the min/max token-set sizes over instances:
/// `ub = |T⁺_b| / |T⁻_a|` if `|T⁻_a| > |T⁺_b|`, symmetric in the other
/// direction, else 1.
#[inline]
pub fn ub_sim_attr_size(a: &Interval, b: &Interval) -> f64 {
    let (a_min, a_max) = (a.lo, a.hi);
    let (b_min, b_max) = (b.lo, b.hi);
    if a_min > b_max {
        b_max / a_min
    } else if a_max < b_min {
        a_max / b_min
    } else {
        1.0
    }
}

/// Lemma 4.1 summed over attributes: `ub_sim(r_i, r_j) = Σ_k ub_k`.
pub fn ub_sim_size(a: &TupleMeta, b: &TupleMeta) -> f64 {
    a.size_bounds
        .iter()
        .zip(&b.size_bounds)
        .map(|(x, y)| ub_sim_attr_size(x, y))
        .sum()
}

/// Lemma 4.2: pivot-based similarity upper bound
/// `ub_sim = d − Σ_k min_dist(r_i[A_k], r_j[A_k])`, using the main pivot
/// only (the auxiliary-pivot refinement lives in [`ub_sim`]).
pub fn ub_sim_pivot_main(a: &TupleMeta, b: &TupleMeta) -> f64 {
    let d = a.arity() as f64;
    let gap_sum: f64 = (0..a.arity())
        .map(|k| a.main_bounds[k].min_gap(&b.main_bounds[k]))
        .sum();
    d - gap_sum
}

/// Combined Theorem 4.2 check: `min(ub_size, ub_pivot) ≤ γ` ⇒ prune.
pub fn sim_prunable(a: &TupleMeta, b: &TupleMeta, gamma: f64, layout_counts: &[usize]) -> bool {
    ub_sim(a, b, layout_counts) <= gamma
}

/// The tightest available similarity upper bound: the minimum of the
/// token-size bound (Lemma 4.1) and the pivot bound (Lemma 4.2, using the
/// main pivot and every auxiliary pivot per attribute).
///
/// `aux_counts[k]` is the number of auxiliary pivots of attribute `k`
/// (prefix-summed into the flattened `aux_bounds` layout).
#[allow(clippy::needless_range_loop)] // k indexes parallel per-attribute arrays
pub fn ub_sim(a: &TupleMeta, b: &TupleMeta, aux_counts: &[usize]) -> f64 {
    let d = a.arity() as f64;
    let mut gap_sum = 0.0;
    let mut aux_off = 0;
    for k in 0..a.arity() {
        let mut gap = a.main_bounds[k].min_gap(&b.main_bounds[k]);
        for s in 0..aux_counts[k] {
            let slot = aux_off + s;
            gap = gap.max(a.aux_bounds[slot].min_gap(&b.aux_bounds[slot]));
        }
        aux_off += aux_counts[k];
        gap_sum += gap;
    }
    let pivot_ub = d - gap_sum;
    pivot_ub.min(ub_sim_size(a, b))
}

/// Lemma 4.3 (Paley–Zygmund probability upper bound).
///
/// With `X = dist(r_i, piv)`, `Y = dist(r_j, piv)` (total main-pivot
/// distances), their expectations and bounds give an upper bound on
/// `Pr{ sim(r_i, r_j) > γ }`, hence on `Pr_TER-iDS`. Returns 1 when the
/// lemma's side conditions fail (no pruning possible).
pub fn prob_upper_bound(a: &TupleMeta, b: &TupleMeta, gamma: f64) -> f64 {
    let d = a.arity() as f64;
    let ex = a.total_main_expect();
    let ey = b.total_main_expect();
    let bx = a.total_main_bounds();
    let by = b.total_main_bounds();
    let (lb_x, ub_x) = (bx.lo, bx.hi);
    let (lb_y, ub_y) = (by.lo, by.hi);
    let dg = d - gamma;

    // Case 1: X − Y ≥ 0 surely.
    if lb_x >= ub_y && ex - ey > 0.0 {
        let theta = dg / (ex - ey);
        let denom = ub_x - lb_y;
        if (0.0..=1.0).contains(&theta) && denom > 0.0 {
            return 1.0 - (1.0 - theta).powi(2) * (ex - ey) / denom;
        }
    }
    // Case 2: Y − X ≥ 0 surely.
    if lb_y >= ub_x && ey - ex > 0.0 {
        let theta = dg / (ey - ex);
        let denom = ub_y - lb_x;
        if (0.0..=1.0).contains(&theta) && denom > 0.0 {
            return 1.0 - (1.0 - theta).powi(2) * (ey - ex) / denom;
        }
    }
    1.0
}

/// Theorem 4.3: prune when the probability upper bound is at most `α`.
#[inline]
pub fn prob_prunable(a: &TupleMeta, b: &TupleMeta, gamma: f64, alpha: f64) -> bool {
    prob_upper_bound(a, b, gamma) <= alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::AuxLayout;
    use ter_repo::{PivotConfig, PivotTable, Record, Repository, Schema};
    use ter_stream::{AttrCandidates, ProbTuple};
    use ter_text::{Dictionary, KeywordSet};

    struct Fixture {
        pivots: PivotTable,
        layout: AuxLayout,
        dict: Dictionary,
        schema: Schema,
    }

    fn fixture() -> Fixture {
        let schema = Schema::new(vec!["title", "tags", "studio"]);
        let mut dict = Dictionary::new();
        let rows = [
            ("space cowboy adventure", "scifi western bounty", "sunrise"),
            ("high school romance story", "drama comedy school", "kyoani"),
            ("mecha battle future war", "scifi action mecha", "sunrise"),
            ("cooking master challenge", "comedy food contest", "shaft"),
            (
                "detective mystery case files",
                "mystery crime noir",
                "production ig",
            ),
            ("idol band music live", "music idol slice", "aniplex"),
        ];
        let recs = rows
            .iter()
            .enumerate()
            .map(|(i, (a, b, c))| {
                Record::from_texts(&schema, i as u64, &[Some(a), Some(b), Some(c)], &mut dict)
            })
            .collect();
        let repo = Repository::from_records(schema.clone(), recs);
        let pivots = PivotTable::select(&repo, &PivotConfig::default());
        let layout = AuxLayout::new(&pivots);
        Fixture {
            pivots,
            layout,
            dict,
            schema,
        }
    }

    fn meta_of(fx: &mut Fixture, id: u64, texts: &[&str], kw: &KeywordSet) -> TupleMeta {
        let texts: Vec<Option<&str>> = texts.iter().map(|t| Some(*t)).collect();
        let r = Record::from_texts(&fx.schema, id, &texts, &mut fx.dict);
        TupleMeta::build(id, 0, 0, ProbTuple::certain(r), &fx.pivots, &fx.layout, kw)
    }

    fn aux_counts(fx: &Fixture) -> Vec<usize> {
        (0..fx.pivots.arity())
            .map(|j| fx.pivots.aux_count(j))
            .collect()
    }

    #[test]
    fn topic_pruning_requires_both_non_topical() {
        let mut fx = fixture();
        let kw = KeywordSet::parse("scifi", &fx.dict);
        let a = meta_of(
            &mut fx,
            1,
            &["space cowboy", "scifi western", "sunrise"],
            &kw,
        );
        let b = meta_of(&mut fx, 2, &["cooking", "comedy food", "shaft"], &kw);
        let c = meta_of(&mut fx, 3, &["romance", "drama", "kyoani"], &kw);
        assert!(!topic_prunable(&a, &b)); // a is topical
        assert!(topic_prunable(&b, &c)); // neither topical
    }

    #[test]
    fn size_bound_matches_paper_example_5() {
        // Example 5: |T(r1[A])|=10, |T(r2[A])|=8, |T(r1[B])|=7, |T(r2[B])|=10,
        // |T(r1[C])| ∈ [5,7], |T(r2[C])| ∈ [10,12] → ub = 0.8 + 0.7 + 0.7 = 2.2
        let ub_a = ub_sim_attr_size(&Interval::point(10.0), &Interval::point(8.0));
        let ub_b = ub_sim_attr_size(&Interval::point(7.0), &Interval::point(10.0));
        let ub_c = ub_sim_attr_size(&Interval::new(5.0, 7.0), &Interval::new(10.0, 12.0));
        assert!((ub_a - 0.8).abs() < 1e-12);
        assert!((ub_b - 0.7).abs() < 1e-12);
        assert!((ub_c - 0.7).abs() < 1e-12);
        assert!((ub_a + ub_b + ub_c - 2.2).abs() < 1e-12);
    }

    #[test]
    fn size_bound_overlapping_sizes_is_one() {
        assert_eq!(
            ub_sim_attr_size(&Interval::new(3.0, 6.0), &Interval::new(5.0, 9.0)),
            1.0
        );
    }

    #[test]
    fn ub_sim_dominates_true_similarity_for_certain_tuples() {
        let mut fx = fixture();
        let kw = KeywordSet::universe();
        let a = meta_of(
            &mut fx,
            1,
            &["space cowboy adventure", "scifi western", "sunrise"],
            &kw,
        );
        let b = meta_of(
            &mut fx,
            2,
            &["space cowboy story", "scifi western", "sunrise"],
            &kw,
        );
        let counts = aux_counts(&fx);
        let true_sim = a.tuple.base.similarity(&b.tuple.base);
        let ub = ub_sim(&a, &b, &counts);
        assert!(
            ub >= true_sim - 1e-9,
            "ub {ub} < true similarity {true_sim}"
        );
    }

    #[test]
    fn identical_tuples_not_sim_prunable() {
        let mut fx = fixture();
        let kw = KeywordSet::universe();
        let a = meta_of(
            &mut fx,
            1,
            &["mecha battle", "scifi action", "sunrise"],
            &kw,
        );
        let b = meta_of(
            &mut fx,
            2,
            &["mecha battle", "scifi action", "sunrise"],
            &kw,
        );
        let counts = aux_counts(&fx);
        // identical tuples: similarity = 3 = d; any γ < d must not prune.
        assert!(!sim_prunable(&a, &b, 2.9, &counts));
    }

    #[test]
    fn prob_upper_bound_example_7_shape() {
        // Reconstruct Example 7's numbers through synthetic metas is
        // impractical; instead verify the closed form directly.
        // E(X)=0.7, E(Y)=1.2, lb_X=0.3, ub_X=1.1, lb_Y=1.1, ub_Y=1.3,
        // d=3, γ=2.8 → UB = 1 − (1 − 0.2/0.5)² · 0.5/1.0 = 0.82
        let theta: f64 = (3.0 - 2.8) / (1.2 - 0.7);
        let ub = 1.0 - (1.0 - theta).powi(2) * (1.2 - 0.7) / (1.3 - 0.3);
        assert!((ub - 0.82).abs() < 1e-9);
    }

    #[test]
    fn prob_upper_bound_is_one_without_separation() {
        let mut fx = fixture();
        let kw = KeywordSet::universe();
        let a = meta_of(
            &mut fx,
            1,
            &["mecha battle", "scifi action", "sunrise"],
            &kw,
        );
        let b = meta_of(
            &mut fx,
            2,
            &["mecha battle", "scifi action", "sunrise"],
            &kw,
        );
        // Identical tuples: bounds coincide; lemma conditions require strict
        // separation, so the bound degrades to 1 (no pruning).
        assert_eq!(prob_upper_bound(&a, &b, 1.5), 1.0);
    }

    #[test]
    fn prob_upper_bound_dominates_exact_probability_uncertain() {
        let mut fx = fixture();
        let kw = KeywordSet::universe();
        // Tuple with an uncertain attribute far from / close to b.
        let base = Record::from_texts(
            &fx.schema,
            7,
            &[Some("space cowboy adventure"), None, Some("sunrise")],
            &mut fx.dict,
        );
        let c1 = ter_text::tokenize("scifi western bounty", &mut fx.dict);
        let c2 = ter_text::tokenize("mystery crime noir", &mut fx.dict);
        let pt = ProbTuple::new(
            base,
            vec![AttrCandidates::normalized(1, vec![(c1, 1.0), (c2, 1.0)])],
        );
        let a = TupleMeta::build(7, 0, 0, pt, &fx.pivots, &fx.layout, &kw);
        let b = meta_of(
            &mut fx,
            8,
            &["space cowboy adventure", "scifi western bounty", "sunrise"],
            &kw,
        );
        for gamma in [1.0, 1.5, 2.0, 2.5, 2.9] {
            let exact: f64 = a
                .tuple
                .instances()
                .flat_map(|ia| {
                    b.tuple.instances().map(move |ib| {
                        if ia.similarity(&ib) > gamma {
                            ia.prob * ib.prob
                        } else {
                            0.0
                        }
                    })
                })
                .sum();
            let ub = prob_upper_bound(&a, &b, gamma);
            assert!(ub >= exact - 1e-9, "γ={gamma}: ub {ub} < exact {exact}");
        }
    }

    #[test]
    fn disjoint_far_tuples_are_sim_prunable_for_high_gamma() {
        let mut fx = fixture();
        let kw = KeywordSet::universe();
        let a = meta_of(
            &mut fx,
            1,
            &["space cowboy adventure", "scifi western bounty", "sunrise"],
            &kw,
        );
        let b = meta_of(
            &mut fx,
            2,
            &["idol band music live", "music idol slice", "aniplex"],
            &kw,
        );
        let counts = aux_counts(&fx);
        // Completely disjoint tuples: true similarity 0; a tight γ close to
        // d should allow pruning via at least one bound.
        let ub = ub_sim(&a, &b, &counts);
        assert!(ub < 3.0);
        assert!(sim_prunable(&a, &b, ub + 1e-9, &counts));
    }
}
