//! Engine parameters (Table 5 of the paper).

use ter_impute::ImputeConfig;

/// How much of the §4 pruning arsenal an engine applies. Shared by the
/// sequential engine and the sharded batch-parallel engine (`ter_exec`),
/// which must agree bit-for-bit under either mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruningMode {
    /// Cell-level + all four pair-level prunings + early-terminated
    /// refinement — the full TER-iDS method.
    Full,
    /// Only grid (cell-level) retrieval; surfaced candidates are refined
    /// by full exact probability. This is the `I_j+G_ER` baseline:
    /// indexes applied, but no join-time pair pruning.
    GridOnly,
}

/// TER-iDS runtime parameters. Paper defaults (Table 5, bold): `α = 0.5`,
/// `ρ = 0.5`, `w = 1000`; the reproduction's harness scales `w` down (see
/// DESIGN.md §5) but keeps the same ratios.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Probabilistic threshold `α ∈ [0, 1)`: report pairs with
    /// `Pr_TER-iDS > α`.
    pub alpha: f64,
    /// Similarity-threshold ratio `ρ = γ / d ∈ (0, 1)`; the similarity
    /// threshold is `γ = ρ · d` (per-attribute similarities sum to `d`).
    pub rho: f64,
    /// Sliding-window size `w` (count-based, Definition 2).
    pub window: usize,
    /// ER-grid resolution: cells per dimension.
    pub grid_cells: u16,
    /// aR-tree fanout for the DR-index and CDD-index.
    pub fanout: usize,
    /// Imputation candidate cap.
    pub impute: ImputeConfig,
    /// Donor count for the `con+ER` baseline.
    pub donors: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            rho: 0.5,
            window: 400,
            grid_cells: 5,
            fanout: 16,
            impute: ImputeConfig::default(),
            donors: 3,
        }
    }
}

impl Params {
    /// The absolute similarity threshold `γ = ρ · d` for arity `d`.
    pub fn gamma(&self, arity: usize) -> f64 {
        self.rho * arity as f64
    }

    /// Validates parameter ranges (problem statement: `γ ∈ (0, d)`,
    /// `α ∈ [0, 1)`).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.alpha) {
            return Err(format!("alpha {} outside [0,1)", self.alpha));
        }
        if !(self.rho > 0.0 && self.rho < 1.0) {
            return Err(format!("rho {} outside (0,1)", self.rho));
        }
        if self.window == 0 {
            return Err("window must be positive".into());
        }
        if self.grid_cells == 0 {
            return Err("grid_cells must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_5_ratios() {
        let p = Params::default();
        assert_eq!(p.alpha, 0.5);
        assert_eq!(p.rho, 0.5);
        p.validate().unwrap();
    }

    #[test]
    fn gamma_scales_with_arity() {
        let p = Params {
            rho: 0.5,
            ..Params::default()
        };
        assert_eq!(p.gamma(4), 2.0);
        assert_eq!(p.gamma(7), 3.5);
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let mut p = Params {
            alpha: 1.0,
            ..Params::default()
        };
        assert!(p.validate().is_err());
        p.alpha = 0.5;
        p.rho = 0.0;
        assert!(p.validate().is_err());
        p.rho = 0.5;
        p.window = 0;
        assert!(p.validate().is_err());
    }
}
