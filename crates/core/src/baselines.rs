//! The five baselines of §6.1 ("State-of-the-art Approaches").
//!
//! | name      | imputation                         | ER                     |
//! |-----------|------------------------------------|------------------------|
//! | `Ij+GER`  | CDD rules via indexes              | ER-grid, no pair pruning (lives in [`crate::engine`] as [`crate::PruningMode::GridOnly`]) |
//! | `CDD+ER`  | CDD rules, linear scans            | nested loop, exact     |
//! | `DD+ER`   | DD rules, linear scans             | nested loop, exact     |
//! | `er+ER`   | editing rules, linear scans        | nested loop, exact     |
//! | `con+ER`  | window neighbours (no repository)  | nested loop, exact     |
//!
//! The nested-loop ER computes the exact `Pr_TER-iDS` (Equation 2) for
//! every cross-stream window pair — the quadratic cost the paper's
//! pruning/indexing avoids.

use std::time::Instant;

use ter_impute::{ConstraintImputer, ImputeContext, Imputer, RuleImputer, RuleRetrieval};
use ter_repo::Record;
use ter_stream::{Arrival, ProbTuple, SlidingWindow};
use ter_text::fxhash::{FxHashMap, FxHashSet};

use crate::engine::{StepOutput, TerContext};
use crate::meta::TupleMeta;
use crate::metrics::{PhaseTiming, PruneStats};
use crate::params::Params;
use crate::refine::exact_probability;
use crate::results::{norm_pair, ResultSet};
use crate::ErProcessor;

enum BaselineImputer<'a> {
    Rule(RuleImputer<'a>),
    Constraint(ConstraintImputer),
}

/// A no-index, no-pruning processor: impute, then nested-loop exact ER.
pub struct NaiveEngine<'a> {
    name: &'static str,
    ctx: &'a TerContext,
    params: Params,
    gamma: f64,
    imputer: BaselineImputer<'a>,
    window: SlidingWindow<u64>,
    /// Original (pre-imputation) records in window order — the donor pool
    /// for the constraint-based imputer.
    window_records: Vec<Record>,
    metas: FxHashMap<u64, TupleMeta>,
    results: ResultSet,
    reported: FxHashSet<(u64, u64)>,
    timing: PhaseTiming,
}

impl<'a> NaiveEngine<'a> {
    fn new(
        name: &'static str,
        ctx: &'a TerContext,
        params: Params,
        imputer: BaselineImputer<'a>,
    ) -> Self {
        params.validate().expect("invalid parameters");
        Self {
            name,
            ctx,
            params,
            gamma: params.gamma(ctx.arity()),
            imputer,
            window: SlidingWindow::new(params.window),
            window_records: Vec::new(),
            metas: FxHashMap::default(),
            results: ResultSet::new(),
            reported: FxHashSet::default(),
            timing: PhaseTiming::default(),
        }
    }

    /// `CDD+ER`: CDD imputation without indexes, nested-loop ER.
    pub fn cdd_er(ctx: &'a TerContext, params: Params) -> Self {
        let imputer = RuleImputer::new(
            "CDD-linear",
            &ctx.repo,
            &ctx.pivots,
            &ctx.cdds,
            RuleRetrieval::Linear,
            params.impute,
        );
        Self::new("CDD+ER", ctx, params, BaselineImputer::Rule(imputer))
    }

    /// `DD+ER`: differential-dependency imputation, nested-loop ER.
    pub fn dd_er(ctx: &'a TerContext, params: Params) -> Self {
        let imputer = RuleImputer::new(
            "DD-linear",
            &ctx.repo,
            &ctx.pivots,
            &ctx.dds,
            RuleRetrieval::Linear,
            params.impute,
        );
        Self::new("DD+ER", ctx, params, BaselineImputer::Rule(imputer))
    }

    /// `er+ER`: editing-rule imputation, nested-loop ER.
    pub fn er_er(ctx: &'a TerContext, params: Params) -> Self {
        let imputer = RuleImputer::new(
            "er-linear",
            &ctx.repo,
            &ctx.pivots,
            &ctx.editing_rules,
            RuleRetrieval::Linear,
            params.impute,
        );
        Self::new("er+ER", ctx, params, BaselineImputer::Rule(imputer))
    }

    /// `con+ER`: constraint-based window imputation, nested-loop ER.
    pub fn con_er(ctx: &'a TerContext, params: Params) -> Self {
        let imputer = ConstraintImputer::new(params.donors, params.impute);
        Self::new("con+ER", ctx, params, BaselineImputer::Constraint(imputer))
    }
}

impl ErProcessor for NaiveEngine<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn process(&mut self, arrival: &Arrival) -> StepOutput {
        let mut step = PhaseTiming {
            arrivals: 1,
            ..PhaseTiming::default()
        };

        // ---- expiry ----
        let t = Instant::now();
        let mut retractions = Vec::new();
        let mut expired = Vec::new();
        if let Some((_, old_id)) = self.window.push(arrival.timestamp, arrival.record.id) {
            expired.push(old_id);
            self.metas.remove(&old_id);
            retractions = self.results.remove_involving(old_id);
            if let Some(pos) = self.window_records.iter().position(|r| r.id == old_id) {
                self.window_records.remove(pos);
            }
        }
        step.er += t.elapsed();

        // ---- imputation ----
        let pt = if arrival.record.is_complete() {
            ProbTuple::certain(arrival.record.clone())
        } else {
            match &self.imputer {
                BaselineImputer::Rule(imp) => {
                    let t = Instant::now();
                    let selected = imp.select_rules(&arrival.record);
                    step.rule_selection += t.elapsed();
                    let t = Instant::now();
                    let pt = imp.impute_with_rules(&arrival.record, &selected);
                    step.imputation += t.elapsed();
                    pt
                }
                BaselineImputer::Constraint(imp) => {
                    let t = Instant::now();
                    let ctx = ImputeContext {
                        window: &self.window_records,
                    };
                    let pt = imp.impute(&arrival.record, &ctx);
                    step.imputation += t.elapsed();
                    pt
                }
            }
        };

        // ---- nested-loop exact ER ----
        let t = Instant::now();
        let meta = TupleMeta::build(
            arrival.record.id,
            arrival.stream_id,
            arrival.timestamp,
            pt,
            &self.ctx.pivots,
            &self.ctx.layout,
            &self.ctx.keywords,
        );
        let mut new_matches = Vec::new();
        for (_, &other_id) in self.window.iter() {
            if other_id == meta.id {
                continue;
            }
            let Some(other) = self.metas.get(&other_id) else {
                continue;
            };
            if other.stream_id == meta.stream_id {
                continue;
            }
            let pr = exact_probability(&meta, other, &self.ctx.keywords, self.gamma);
            if pr > self.params.alpha {
                new_matches.push(norm_pair(meta.id, other_id));
            }
        }
        for &(a, b) in &new_matches {
            self.results.insert(a, b);
            self.reported.insert((a, b));
        }
        self.window_records.push(arrival.record.clone());
        self.metas.insert(meta.id, meta);
        step.er += t.elapsed();

        self.timing.accumulate(&step);
        StepOutput {
            new_matches,
            retractions,
            expired,
            timing: step,
        }
    }

    fn results(&self) -> &ResultSet {
        &self.results
    }

    fn reported(&self) -> &FxHashSet<(u64, u64)> {
        &self.reported
    }

    fn prune_stats(&self) -> PruneStats {
        PruneStats::default()
    }

    fn timing(&self) -> PhaseTiming {
        self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PruningMode, TerIdsEngine};
    use ter_repo::{PivotConfig, Repository, Schema};
    use ter_rules::DiscoveryConfig;
    use ter_stream::StreamSet;
    use ter_text::{Dictionary, KeywordSet};

    fn scenario() -> (TerContext, StreamSet) {
        let schema = Schema::new(vec!["title", "tags"]);
        let mut dict = Dictionary::new();
        let rows = [
            ("space cowboy adventure", "scifi western"),
            ("space pirate saga", "scifi action"),
            ("high school romance", "drama comedy"),
            ("cooking master", "comedy food"),
            ("mecha future war", "scifi action"),
            ("idol music live", "music idol"),
        ];
        let recs = rows
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                ter_repo::Record::from_texts(
                    &schema,
                    1000 + i as u64,
                    &[Some(a), Some(b)],
                    &mut dict,
                )
            })
            .collect();
        let repo = Repository::from_records(schema.clone(), recs);
        let keywords = KeywordSet::parse("scifi", &dict);
        let ctx = TerContext::build(
            repo,
            keywords,
            &PivotConfig::default(),
            &DiscoveryConfig {
                min_support: 2,
                min_constant_support: 2,
                ..DiscoveryConfig::default()
            },
            16,
        );
        let s0 = vec![
            Record::from_texts(
                &schema,
                1,
                &[Some("space cowboy adventure"), Some("scifi western")],
                &mut dict,
            ),
            Record::from_texts(
                &schema,
                3,
                &[Some("cooking master"), Some("comedy food")],
                &mut dict,
            ),
        ];
        let s1 = vec![
            Record::from_texts(
                &schema,
                2,
                &[Some("space cowboy adventure"), Some("scifi western")],
                &mut dict,
            ),
            Record::from_texts(
                &schema,
                4,
                &[Some("idol music live"), Some("music idol")],
                &mut dict,
            ),
        ];
        (ctx, StreamSet::new(vec![s0, s1]))
    }

    /// All CDD-based methods must report the same pairs; the TER-iDS engine
    /// agrees with the brute-force baseline (pruning soundness end-to-end).
    #[test]
    fn cdd_baselines_agree_with_engine() {
        let (ctx, streams) = scenario();
        let params = Params::default();
        let mut engine = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        let mut cdd_er = NaiveEngine::cdd_er(&ctx, params);
        for a in streams.arrivals() {
            engine.process(&a);
            cdd_er.process(&a);
        }
        let mut r1: Vec<_> = engine.reported().iter().copied().collect();
        let mut r2: Vec<_> = cdd_er.reported().iter().copied().collect();
        r1.sort_unstable();
        r2.sort_unstable();
        assert_eq!(r1, r2);
        assert!(!r1.is_empty());
    }

    #[test]
    fn all_baselines_run() {
        let (ctx, streams) = scenario();
        let params = Params::default();
        let mut engines: Vec<NaiveEngine> = vec![
            NaiveEngine::cdd_er(&ctx, params),
            NaiveEngine::dd_er(&ctx, params),
            NaiveEngine::er_er(&ctx, params),
            NaiveEngine::con_er(&ctx, params),
        ];
        for a in streams.arrivals() {
            for e in &mut engines {
                e.process(&a);
            }
        }
        for e in &engines {
            // Every baseline finds the exact-duplicate pair (1,2).
            assert!(
                e.reported().contains(&(1, 2)),
                "{} missed the trivial match",
                e.name()
            );
            assert!(e.timing().arrivals == 4);
        }
    }

    #[test]
    fn baseline_expiry_updates_donor_pool_and_results() {
        let (ctx, streams) = scenario();
        let params = Params {
            window: 2,
            ..Params::default()
        };
        let mut con = NaiveEngine::con_er(&ctx, params);
        let arrivals = streams.arrivals();
        for a in &arrivals {
            con.process(a);
        }
        // Window holds the last 2 tuples only.
        assert_eq!(con.window_records.len(), 2);
        assert!(!con.results().contains(1, 2));
        assert!(con.reported().contains(&(1, 2)));
    }
}
