//! Evaluation metrics: F-score (Equation 6), pruning power (Figure 4),
//! and per-phase timing (Figure 6's break-up cost).

use std::time::Duration;

use ter_text::fxhash::FxHashSet;

/// Precision / recall / F-score of a reported pair set against ground
/// truth (Equation 6: recall = |reported ∩ truth| / |truth|, precision =
/// |reported ∩ truth| / |reported|).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// `tp / (tp + fp)`; 1 when nothing was reported and truth is empty.
    pub precision: f64,
    /// `tp / (tp + fn)`.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f_score: f64,
}

/// Evaluates reported pairs against ground truth. Pairs must be
/// order-normalized `(min, max)` in both sets.
pub fn evaluate(
    reported: &FxHashSet<(u64, u64)>,
    groundtruth: &FxHashSet<(u64, u64)>,
) -> Evaluation {
    let tp = reported.intersection(groundtruth).count();
    let fp = reported.len() - tp;
    let fn_ = groundtruth.len() - tp;
    let precision = if reported.is_empty() {
        if groundtruth.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        tp as f64 / reported.len() as f64
    };
    let recall = if groundtruth.is_empty() {
        1.0
    } else {
        tp as f64 / groundtruth.len() as f64
    };
    let f_score = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Evaluation {
        tp,
        fp,
        fn_,
        precision,
        recall,
        f_score,
    }
}

/// Cumulative pruning counters, applied in the paper's order
/// (Figure 4): topic keyword → similarity UB → probability UB →
/// instance-pair-level; survivors are refined exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Candidate tuple pairs considered (new tuple × other-stream window
    /// tuples).
    pub total_pairs: u64,
    /// Pruned by Theorem 4.1 (topic keywords).
    pub topic: u64,
    /// Pruned by Theorem 4.2 (similarity upper bound).
    pub sim: u64,
    /// Pruned by Theorem 4.3 (probability upper bound).
    pub prob: u64,
    /// Rejected by Theorem 4.4 (instance-pair-level, incl. full refinement
    /// concluding `Pr ≤ α`).
    pub instance: u64,
    /// Pairs reported as matches.
    pub matches: u64,
}

impl PruneStats {
    /// Fraction of candidate pairs pruned by each strategy, in paper order.
    /// Returns `(topic, sim, prob, instance)` as percentages of
    /// `total_pairs`.
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        if self.total_pairs == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let t = self.total_pairs as f64;
        (
            100.0 * self.topic as f64 / t,
            100.0 * self.sim as f64 / t,
            100.0 * self.prob as f64 / t,
            100.0 * self.instance as f64 / t,
        )
    }

    /// Total pruned fraction (percent).
    pub fn total_pruned_pct(&self) -> f64 {
        let (a, b, c, d) = self.percentages();
        a + b + c + d
    }
}

/// Per-phase wall-clock accounting (Figure 6's break-up: online CDD
/// selection, online imputation, online ER).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTiming {
    /// Time selecting applicable CDD rules.
    pub rule_selection: Duration,
    /// Time retrieving samples and building candidate distributions.
    pub imputation: Duration,
    /// Time on candidate retrieval + pruning + refinement.
    pub er: Duration,
    /// Number of processed arrivals (for averaging).
    pub arrivals: u64,
}

impl PhaseTiming {
    /// Adds another timing record.
    pub fn accumulate(&mut self, other: &PhaseTiming) {
        self.rule_selection += other.rule_selection;
        self.imputation += other.imputation;
        self.er += other.er;
        self.arrivals += other.arrivals;
    }

    /// Total wall-clock across phases.
    pub fn total(&self) -> Duration {
        self.rule_selection + self.imputation + self.er
    }

    /// Average seconds per arrival (the paper's per-timestamp wall clock).
    pub fn avg_secs_per_arrival(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.total().as_secs_f64() / self.arrivals as f64
        }
    }
}

/// Execution-shape counters of a staged (pipelined) engine run. Unlike
/// [`PruneStats`] these describe *how* the work was scheduled, not what
/// it computed — two runs with different stage metrics must still produce
/// bit-identical results, which is exactly what the parity suites check.
/// Sequential engines report all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageMetrics {
    /// Synchronization rounds where the driving (merge) thread blocked on
    /// worker responses. The lock-step drive pays two per arrival
    /// (traverse, then fanned refine); the overlapped drive pays one.
    pub er_barriers: u64,
    /// Arrivals whose refine stage was fanned out to the worker pool
    /// (candidate set at or above the fan-out threshold, and non-empty).
    pub fanned_refines: u64,
    /// Arrivals processed by the overlapped (software-pipelined) drive.
    pub overlapped_arrivals: u64,
    /// Batches executed against an attached worker pool.
    pub pooled_batches: u64,
}

impl StageMetrics {
    /// Barriers the merge thread paid per processed arrival (0 when no
    /// arrival ever ran pooled).
    pub fn barriers_per_arrival(&self, arrivals: u64) -> f64 {
        if arrivals == 0 {
            0.0
        } else {
            self.er_barriers as f64 / arrivals as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(u64, u64)]) -> FxHashSet<(u64, u64)> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn perfect_match() {
        let e = evaluate(&set(&[(1, 2), (3, 4)]), &set(&[(1, 2), (3, 4)]));
        assert_eq!(e.f_score, 1.0);
        assert_eq!((e.tp, e.fp, e.fn_), (2, 0, 0));
    }

    #[test]
    fn partial_overlap() {
        let e = evaluate(&set(&[(1, 2), (5, 6)]), &set(&[(1, 2), (3, 4)]));
        assert_eq!(e.precision, 0.5);
        assert_eq!(e.recall, 0.5);
        assert_eq!(e.f_score, 0.5);
    }

    #[test]
    fn nothing_reported() {
        let e = evaluate(&set(&[]), &set(&[(1, 2)]));
        assert_eq!(e.precision, 0.0);
        assert_eq!(e.recall, 0.0);
        assert_eq!(e.f_score, 0.0);
    }

    #[test]
    fn empty_truth_and_empty_report_is_perfect() {
        let e = evaluate(&set(&[]), &set(&[]));
        assert_eq!(e.f_score, 1.0);
    }

    #[test]
    fn prune_percentages() {
        let s = PruneStats {
            total_pairs: 200,
            topic: 160,
            sim: 20,
            prob: 10,
            instance: 6,
            matches: 4,
        };
        let (t, si, p, i) = s.percentages();
        assert_eq!(t, 80.0);
        assert_eq!(si, 10.0);
        assert_eq!(p, 5.0);
        assert_eq!(i, 3.0);
        assert_eq!(s.total_pruned_pct(), 98.0);
    }

    #[test]
    fn zero_pairs_percentages_are_zero() {
        assert_eq!(PruneStats::default().percentages(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn timing_accumulation_and_average() {
        let mut t = PhaseTiming::default();
        t.accumulate(&PhaseTiming {
            rule_selection: Duration::from_millis(10),
            imputation: Duration::from_millis(20),
            er: Duration::from_millis(30),
            arrivals: 2,
        });
        t.accumulate(&PhaseTiming {
            rule_selection: Duration::from_millis(10),
            imputation: Duration::from_millis(0),
            er: Duration::from_millis(30),
            arrivals: 2,
        });
        assert_eq!(t.total(), Duration::from_millis(100));
        assert!((t.avg_secs_per_arrival() - 0.025).abs() < 1e-12);
    }
}
