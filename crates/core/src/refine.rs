//! Exact `Pr_TER-iDS` computation (Equation 2) and the instance-pair-level
//! pruning / early termination of Theorem 4.4.
//!
//! Refinement enumerates instance pairs `(r_{i,m}, r_{j,m'})` in
//! probability-mass order is not required for correctness; Theorem 4.4 only
//! needs the running sums: after processing a set `S` of pairs,
//!
//! ```text
//! Pr ≤ Σ_{S} Pr(pair) + (1 − Σ_{S} p_i·p_j)      (prune when ≤ α)
//! Pr ≥ Σ_{S} Pr(pair)                            (accept when > α)
//! ```
//!
//! so the loop stops as soon as either bound decides the pair.

use ter_text::KeywordSet;

use crate::meta::TupleMeta;
use crate::params::PruningMode;
use crate::pruning;

/// Outcome of refining one tuple pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Refinement {
    /// The pair matches (`Pr_TER-iDS > α`); carries the accumulated
    /// qualifying probability at decision time (a lower bound on the exact
    /// probability when early-accepted).
    Match(f64),
    /// Rejected by the Theorem 4.4 upper bound before exhausting pairs.
    PrunedEarly {
        /// Instance pairs examined before the bound dropped below `α`.
        pairs_examined: usize,
    },
    /// Rejected after full enumeration (`Pr_TER-iDS ≤ α` exactly).
    NoMatch(f64),
}

/// Shared inputs of the pair-decision cascade — identical for every pair
/// examined on behalf of one probe tuple, so engines build it once per
/// arrival and hand it to [`decide_pair`].
#[derive(Debug, Clone, Copy)]
pub struct PairContext<'a> {
    /// Query topic keywords `K`.
    pub keywords: &'a KeywordSet,
    /// Similarity threshold `γ = ρ · d`.
    pub gamma: f64,
    /// Probabilistic threshold `α`.
    pub alpha: f64,
    /// Auxiliary-pivot counts per attribute.
    pub aux_counts: &'a [usize],
    /// Which prunings to apply.
    pub mode: PruningMode,
}

/// Outcome of the pair-level cascade for one *examined* candidate pair,
/// i.e. one that survived Theorem 4.1 and cell-level pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairDecision {
    /// Pruned by Theorem 4.2 (similarity upper bound).
    SimPruned,
    /// Pruned by Theorem 4.3 (probability upper bound).
    ProbPruned,
    /// Rejected at the instance-pair level (Theorem 4.4 early termination
    /// or full refinement concluding `Pr ≤ α`).
    InstancePruned,
    /// `Pr_TER-iDS > α`: report the pair.
    Match,
}

/// The pair-level pruning → refinement cascade (Theorems 4.2 → 4.3 → 4.4,
/// in the paper's order) for one examined pair. A pure function of its
/// inputs: the sequential engine and every shard worker of the
/// batch-parallel engine route examined pairs through this single code
/// path, which is what makes their per-pair decisions — and therefore the
/// merged prune-statistics — bit-identical.
pub fn decide_pair(a: &TupleMeta, b: &TupleMeta, ctx: &PairContext<'_>) -> PairDecision {
    match ctx.mode {
        PruningMode::Full => {
            // Theorem 4.1 cannot fire here: callers only examine pairs
            // where one side is possibly topical (the probe, or a
            // candidate drawn from the topical inverted list).
            debug_assert!(!pruning::topic_prunable(a, b));
            if pruning::ub_sim(a, b, ctx.aux_counts) <= ctx.gamma {
                return PairDecision::SimPruned;
            }
            if pruning::prob_prunable(a, b, ctx.gamma, ctx.alpha) {
                return PairDecision::ProbPruned;
            }
            match refine_pair(a, b, ctx.keywords, ctx.gamma, ctx.alpha) {
                Refinement::Match(_) => PairDecision::Match,
                Refinement::PrunedEarly { .. } | Refinement::NoMatch(_) => {
                    PairDecision::InstancePruned
                }
            }
        }
        PruningMode::GridOnly => {
            if exact_probability(a, b, ctx.keywords, ctx.gamma) > ctx.alpha {
                PairDecision::Match
            } else {
                PairDecision::InstancePruned
            }
        }
    }
}

/// Exact probability (Equation 2), no early termination. Exposed for
/// tests, the oracle, and the no-pruning baselines.
pub fn exact_probability(a: &TupleMeta, b: &TupleMeta, keywords: &KeywordSet, gamma: f64) -> f64 {
    let a_insts: Vec<_> = a.tuple.instances().collect();
    let b_insts: Vec<_> = b.tuple.instances().collect();
    let mut pr = 0.0;
    for ia in &a_insts {
        let a_topical = keywords.is_universe() || ia.contains_any_token(keywords.tokens());
        for ib in &b_insts {
            let topical =
                a_topical || keywords.is_universe() || ib.contains_any_token(keywords.tokens());
            if topical && ia.similarity(ib) > gamma {
                pr += ia.prob * ib.prob;
            }
        }
    }
    pr
}

/// Refines a tuple pair with Theorem 4.4 early termination.
pub fn refine_pair(
    a: &TupleMeta,
    b: &TupleMeta,
    keywords: &KeywordSet,
    gamma: f64,
    alpha: f64,
) -> Refinement {
    let a_insts: Vec<_> = a.tuple.instances().collect();
    let b_insts: Vec<_> = b.tuple.instances().collect();
    let mut qualifying = 0.0; // Σ_S Pr(pair)
    let mut processed = 0.0; // Σ_S p_i · p_j
    let mut examined = 0usize;
    for ia in &a_insts {
        let a_topical = keywords.is_universe() || ia.contains_any_token(keywords.tokens());
        for ib in &b_insts {
            let mass = ia.prob * ib.prob;
            let topical = a_topical || ib.contains_any_token(keywords.tokens());
            if topical && ia.similarity(ib) > gamma {
                qualifying += mass;
            }
            processed += mass;
            examined += 1;
            if qualifying > alpha {
                return Refinement::Match(qualifying);
            }
            // Theorem 4.4: optimistic mass of unprocessed pairs.
            if qualifying + (1.0 - processed) <= alpha {
                return Refinement::PrunedEarly {
                    pairs_examined: examined,
                };
            }
        }
    }
    // Exhausted: exact probability is `qualifying`.
    if qualifying > alpha {
        Refinement::Match(qualifying)
    } else {
        Refinement::NoMatch(qualifying)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{AuxLayout, TupleMeta};
    use ter_repo::{PivotConfig, PivotTable, Record, Repository, Schema};
    use ter_stream::{AttrCandidates, ProbTuple};
    use ter_text::Dictionary;

    struct Fx {
        pivots: PivotTable,
        layout: AuxLayout,
        dict: Dictionary,
        schema: Schema,
    }

    fn fx() -> Fx {
        let schema = Schema::new(vec!["a", "b"]);
        let mut dict = Dictionary::new();
        let rows = [
            ("alpha beta", "red green"),
            ("gamma delta", "blue yellow"),
            ("alpha gamma", "red blue"),
            ("beta delta", "green yellow"),
        ];
        let recs = rows
            .iter()
            .enumerate()
            .map(|(i, (x, y))| {
                Record::from_texts(&schema, i as u64, &[Some(x), Some(y)], &mut dict)
            })
            .collect();
        let repo = Repository::from_records(schema.clone(), recs);
        let pivots = PivotTable::select(&repo, &PivotConfig::default());
        let layout = AuxLayout::new(&pivots);
        Fx {
            pivots,
            layout,
            dict,
            schema,
        }
    }

    fn certain(fxt: &mut Fx, id: u64, a: &str, b: &str, kw: &KeywordSet) -> TupleMeta {
        let r = Record::from_texts(&fxt.schema, id, &[Some(a), Some(b)], &mut fxt.dict);
        TupleMeta::build(
            id,
            0,
            0,
            ProbTuple::certain(r),
            &fxt.pivots,
            &fxt.layout,
            kw,
        )
    }

    #[test]
    fn exact_probability_certain_pair() {
        let mut f = fx();
        let kw = KeywordSet::universe();
        let a = certain(&mut f, 1, "alpha beta", "red green", &kw);
        let b = certain(&mut f, 2, "alpha beta", "red green", &kw);
        // Identical: sim = 2 > γ for γ < 2.
        assert_eq!(exact_probability(&a, &b, &kw, 1.5), 1.0);
        assert_eq!(exact_probability(&a, &b, &kw, 2.0), 0.0); // strict >
    }

    #[test]
    fn exact_probability_respects_topic() {
        let mut f = fx();
        let kw_match = KeywordSet::parse("alpha", &f.dict);
        let kw_miss = KeywordSet::parse("zeta", &f.dict); // not in dict → empty
        let a = certain(&mut f, 1, "alpha beta", "red green", &kw_match);
        let b = certain(&mut f, 2, "alpha beta", "red green", &kw_match);
        assert_eq!(exact_probability(&a, &b, &kw_match, 1.5), 1.0);
        assert_eq!(exact_probability(&a, &b, &kw_miss, 1.5), 0.0);
    }

    #[test]
    fn probabilistic_pair_prob_is_mass_of_matching_instances() {
        let mut f = fx();
        let kw = KeywordSet::universe();
        let base = Record::from_texts(&f.schema, 1, &[Some("alpha beta"), None], &mut f.dict);
        let close = ter_text::tokenize("red green", &mut f.dict);
        let far = ter_text::tokenize("purple orange", &mut f.dict);
        let pt = ProbTuple::new(
            base,
            vec![AttrCandidates::normalized(
                1,
                vec![(close, 3.0), (far, 1.0)],
            )],
        );
        let a = TupleMeta::build(1, 0, 0, pt, &f.pivots, &f.layout, &kw);
        let b = certain(&mut f, 2, "alpha beta", "red green", &kw);
        // Matching instance: candidate "red green" (p=0.75) → sim=2 > 1.5.
        // Other candidate: sim = 1 + 0 < 1.5.
        let pr = exact_probability(&a, &b, &kw, 1.5);
        assert!((pr - 0.75).abs() < 1e-12);
    }

    #[test]
    fn refine_matches_exact_decision() {
        let mut f = fx();
        let kw = KeywordSet::universe();
        let base = Record::from_texts(&f.schema, 1, &[Some("alpha beta"), None], &mut f.dict);
        let c1 = ter_text::tokenize("red green", &mut f.dict);
        let c2 = ter_text::tokenize("purple orange", &mut f.dict);
        let pt = ProbTuple::new(
            base,
            vec![AttrCandidates::normalized(1, vec![(c1, 1.0), (c2, 1.0)])],
        );
        let a = TupleMeta::build(1, 0, 0, pt, &f.pivots, &f.layout, &kw);
        let b = certain(&mut f, 2, "alpha beta", "red green", &kw);
        let exact = exact_probability(&a, &b, &kw, 1.5);
        for alpha in [0.1, 0.4, 0.49, 0.51, 0.9] {
            let r = refine_pair(&a, &b, &kw, 1.5, alpha);
            let is_match = matches!(r, Refinement::Match(_));
            assert_eq!(is_match, exact > alpha, "alpha={alpha}, refine={r:?}");
        }
    }

    #[test]
    fn early_accept_stops_before_exhaustion() {
        let mut f = fx();
        let kw = KeywordSet::universe();
        let a = certain(&mut f, 1, "alpha beta", "red green", &kw);
        let b = certain(&mut f, 2, "alpha beta", "red green", &kw);
        // Identical certain tuples, α=0.5: first instance pair qualifies
        // with mass 1 > 0.5 → Match(1.0).
        assert_eq!(refine_pair(&a, &b, &kw, 1.5, 0.5), Refinement::Match(1.0));
    }

    #[test]
    fn early_prune_reports_examined_pairs() {
        let mut f = fx();
        let kw = KeywordSet::universe();
        let a = certain(&mut f, 1, "alpha beta", "red green", &kw);
        let b = certain(&mut f, 2, "gamma delta", "blue yellow", &kw);
        // Disjoint: first pair disqualifies, remaining mass 0 ≤ α.
        match refine_pair(&a, &b, &kw, 1.0, 0.3) {
            Refinement::PrunedEarly { pairs_examined } => assert_eq!(pairs_examined, 1),
            other => panic!("expected early prune, got {other:?}"),
        }
    }

    #[test]
    fn alpha_zero_requires_positive_probability() {
        let mut f = fx();
        let kw = KeywordSet::universe();
        let a = certain(&mut f, 1, "alpha beta", "red green", &kw);
        let b = certain(&mut f, 2, "alpha gamma", "red blue", &kw);
        // sim = 1/3 + 1/3 ≈ 0.67; with γ=0.5 it matches; α=0 means any
        // positive probability qualifies.
        let r = refine_pair(&a, &b, &kw, 0.5, 0.0);
        assert!(matches!(r, Refinement::Match(_)));
    }
}
