//! Engine-agnostic snapshot of a TER-iDS engine's dynamic state.
//!
//! [`EngineState`] captures everything that changes as arrivals are
//! consumed — the sliding window, per-tuple metadata (including the
//! imputed probabilistic tuples), per-stream live counts, the live result
//! set `ES`, the reported-pair history, cumulative prune statistics, and
//! the ER-grid's per-cell entry lists. Everything an engine derives from
//! the static [`TerContext`](crate::TerContext) (pivots, rules, indexes,
//! keywords) is deliberately *not* here: the offline pre-computation is a
//! deterministic function of the repository, so a restarted service
//! rebuilds it and grafts this state on top.
//!
//! The representation is canonical — window entries in arrival order,
//! result/reported pairs sorted, grid cells sorted by key with entries in
//! insertion order — so the sequential `TerIdsEngine` and the sharded
//! `ShardedTerIdsEngine` export *equal* states at the same stream
//! position (their per-cell op histories are identical by the PR 2
//! sharding invariant), and a checkpoint taken from one engine restores
//! into the other.
//!
//! Import is validating, not trusting: [`EngineState::validate`] checks
//! every cross-field invariant (window/meta agreement, timestamp
//! monotonicity, id uniqueness, stream-count consistency, pair liveness,
//! cell-key shape) and returns `Err` instead of panicking, because the
//! recovery path must survive arbitrary on-disk corruption that slipped
//! past the frame CRCs.

use ter_index::CellKey;
use ter_text::fxhash::FxHashSet;

use crate::meta::TupleMeta;
use crate::metrics::PruneStats;

/// A snapshot of one engine's dynamic state. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineState {
    /// Window capacity `w` the snapshot was taken under (import into an
    /// engine with a different `w` is refused — the result set would not
    /// be comparable).
    pub window_capacity: usize,
    /// ER-grid resolution (cells per dimension) the cell keys were
    /// computed under. Import into a grid of a different resolution is
    /// refused — the keys would land in wrong rectangles and evictions
    /// would miss them.
    pub grid_cells: u16,
    /// `(timestamp, tuple id)` of every unexpired tuple, oldest first.
    pub window: Vec<(u64, u64)>,
    /// Metadata of the unexpired tuples, in window (arrival) order.
    pub metas: Vec<TupleMeta>,
    /// Live tuple count per stream. Kept verbatim (not re-derived) because
    /// trailing zero entries from fully-expired streams are part of the
    /// engine's observable accounting state.
    pub stream_counts: Vec<usize>,
    /// The live result set `ES`, `(min, max)`-normalized and sorted.
    pub results: Vec<(u64, u64)>,
    /// Every pair ever reported, `(min, max)`-normalized and sorted.
    pub reported: Vec<(u64, u64)>,
    /// Cumulative pruning counters.
    pub stats: PruneStats,
    /// ER-grid cells: `(cell key, payload ids in entry order)`, sorted by
    /// key. Entry order is preserved exactly so the restored grid is
    /// indistinguishable from the crashed one (cell aggregates are left
    /// folds over the entry sequence; same sequence ⇒ same bits).
    pub cells: Vec<(CellKey, Vec<u64>)>,
}

impl EngineState {
    /// Checks every invariant an importing engine relies on, against the
    /// engine's schema arity, configured window capacity, and grid
    /// resolution. Returns a description of the first violation.
    pub fn validate(
        &self,
        arity: usize,
        window_capacity: usize,
        grid_cells: u16,
    ) -> Result<(), String> {
        if self.window_capacity != window_capacity {
            return Err(format!(
                "state window capacity {} != engine window {}",
                self.window_capacity, window_capacity
            ));
        }
        if self.grid_cells != grid_cells {
            return Err(format!(
                "state grid resolution {} != engine grid_cells {}",
                self.grid_cells, grid_cells
            ));
        }
        if self.window.len() > window_capacity {
            return Err(format!(
                "{} window entries exceed capacity {}",
                self.window.len(),
                window_capacity
            ));
        }
        if self.metas.len() != self.window.len() {
            return Err(format!(
                "{} metas for {} window entries",
                self.metas.len(),
                self.window.len()
            ));
        }
        let mut ids: FxHashSet<u64> = FxHashSet::default();
        let mut prev_ts: Option<u64> = None;
        for ((ts, id), meta) in self.window.iter().zip(&self.metas) {
            if prev_ts.is_some_and(|p| p > *ts) {
                return Err(format!("window timestamps decrease at {ts}"));
            }
            prev_ts = Some(*ts);
            if meta.id != *id || meta.timestamp != *ts {
                return Err(format!(
                    "meta ({}, t={}) does not match window entry ({id}, t={ts})",
                    meta.id, meta.timestamp
                ));
            }
            if meta.arity() != arity {
                return Err(format!(
                    "meta {id} has arity {} but engine schema has {arity}",
                    meta.arity()
                ));
            }
            if !ids.insert(*id) {
                return Err(format!("duplicate tuple id {id}"));
            }
        }
        // Stream counts must agree with the live metas: each live stream's
        // count exact, extra (historical) entries zero.
        let mut derived: Vec<usize> = Vec::new();
        for meta in &self.metas {
            if derived.len() <= meta.stream_id {
                derived.resize(meta.stream_id + 1, 0);
            }
            derived[meta.stream_id] += 1;
        }
        if self.stream_counts.len() < derived.len() {
            return Err(format!(
                "stream_counts has {} entries but live tuples span {} streams",
                self.stream_counts.len(),
                derived.len()
            ));
        }
        for (sid, &count) in self.stream_counts.iter().enumerate() {
            let expect = derived.get(sid).copied().unwrap_or(0);
            if count != expect {
                return Err(format!(
                    "stream {sid} count {count} but {expect} live tuples"
                ));
            }
        }
        for &(a, b) in &self.results {
            if a >= b {
                return Err(format!("result pair ({a}, {b}) not normalized"));
            }
            if !ids.contains(&a) || !ids.contains(&b) {
                return Err(format!("result pair ({a}, {b}) references expired tuples"));
            }
        }
        for &(a, b) in &self.reported {
            if a >= b {
                return Err(format!("reported pair ({a}, {b}) not normalized"));
            }
        }
        let mut prev_key: Option<&CellKey> = None;
        for (key, entries) in &self.cells {
            if key.len() != arity {
                return Err(format!(
                    "cell key of {} dims in a {arity}-dim grid",
                    key.len()
                ));
            }
            if key.iter().any(|&k| k >= grid_cells) {
                return Err(format!("cell key {key:?} outside a {grid_cells}-cell grid"));
            }
            if prev_key.is_some_and(|p| p >= key) {
                return Err("cell keys not strictly sorted".into());
            }
            prev_key = Some(key);
            if entries.is_empty() {
                return Err("empty grid cell persisted".into());
            }
            for id in entries {
                if !ids.contains(id) {
                    return Err(format!("cell entry {id} is not a live tuple"));
                }
            }
        }
        Ok(())
    }

    /// Number of live tuples in the snapshot.
    pub fn live_count(&self) -> usize {
        self.window.len()
    }
}

/// The incremental difference between two [`EngineState`] snapshots of
/// the *same* engine at two stream positions — the payload of a delta
/// checkpoint.
///
/// Legality rests on the window discipline: entries are appended at the
/// back and evicted from the front, never reordered or mutated in place,
/// so the base's window splits into an evicted prefix and a surviving
/// suffix that is bit-identical in the successor. The delta then carries
/// exactly the evicted ids, the new arrivals (with their metas), the
/// result-set adds/removes, the reported-pair additions (reported is
/// append-only), and a full replacement for every *touched* grid cell —
/// plus the small whole-copy fields (stream counts, prune counters) whose
/// size does not grow with the window. At low churn the encoded delta is
/// proportional to the churn, not to the window.
///
/// [`delta_between`] refuses (returns `Err`) whenever the two snapshots
/// do not satisfy the append/evict-only relationship — a surviving meta
/// that changed, a reported pair that vanished — so a caller can always
/// fall back to a full checkpoint instead of persisting a lie.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateDelta {
    /// Window capacity both snapshots were taken under.
    pub window_capacity: usize,
    /// Grid resolution both snapshots were taken under.
    pub grid_cells: u16,
    /// Ids evicted from the window front since the base, oldest first.
    pub evicted: Vec<u64>,
    /// `(timestamp, id)` of entries appended since the base, in arrival
    /// order.
    pub arrivals: Vec<(u64, u64)>,
    /// Metadata of the appended entries, in the same order.
    pub arrival_metas: Vec<TupleMeta>,
    /// Full replacement of the per-stream live counts (small).
    pub stream_counts: Vec<usize>,
    /// Result pairs present in the successor but not the base, sorted.
    pub results_added: Vec<(u64, u64)>,
    /// Result pairs present in the base but not the successor, sorted.
    pub results_removed: Vec<(u64, u64)>,
    /// Reported pairs new in the successor, sorted (reported history is
    /// append-only; a vanished pair makes [`delta_between`] refuse).
    pub reported_added: Vec<(u64, u64)>,
    /// Full replacement of the cumulative prune counters (small).
    pub stats: PruneStats,
    /// Touched grid cells, sorted by key: the successor's full entry
    /// list for that key, or an empty list when the cell disappeared.
    pub cells_changed: Vec<(CellKey, Vec<u64>)>,
}

impl StateDelta {
    /// Whether the delta carries no change at all.
    pub fn is_empty(&self) -> bool {
        self.evicted.is_empty()
            && self.arrivals.is_empty()
            && self.results_added.is_empty()
            && self.results_removed.is_empty()
            && self.reported_added.is_empty()
            && self.cells_changed.is_empty()
    }

    /// Number of window entries the delta touches (arrivals + evictions)
    /// — the churn the delta's size should be proportional to.
    pub fn churn(&self) -> usize {
        self.evicted.len() + self.arrivals.len()
    }

    /// Reconstructs the successor snapshot from the base. Validating, not
    /// trusting: every structural assumption (eviction prefix matches,
    /// added pairs absent from the base, removed pairs present, cell keys
    /// sorted) is checked and a violation returns `Err` — the recovery
    /// path feeds this arbitrary on-disk bytes and must degrade, never
    /// panic. The result still goes through the importing engine's
    /// [`EngineState::validate`], so this only needs to be
    /// self-consistent, not exhaustive.
    pub fn apply(&self, base: &EngineState) -> Result<EngineState, String> {
        if self.window_capacity != base.window_capacity {
            return Err(format!(
                "delta window capacity {} != base {}",
                self.window_capacity, base.window_capacity
            ));
        }
        if self.grid_cells != base.grid_cells {
            return Err(format!(
                "delta grid resolution {} != base {}",
                self.grid_cells, base.grid_cells
            ));
        }
        if self.arrival_metas.len() != self.arrivals.len() {
            return Err(format!(
                "{} metas for {} delta arrivals",
                self.arrival_metas.len(),
                self.arrivals.len()
            ));
        }
        let e = self.evicted.len();
        if e > base.window.len() {
            return Err(format!(
                "delta evicts {e} of {} base entries",
                base.window.len()
            ));
        }
        for (i, id) in self.evicted.iter().enumerate() {
            if base.window[i].1 != *id {
                return Err(format!(
                    "evicted id {id} does not match base window front {}",
                    base.window[i].1
                ));
            }
        }
        let mut window = base.window[e..].to_vec();
        window.extend_from_slice(&self.arrivals);
        let mut metas = base.metas[e..].to_vec();
        metas.extend(self.arrival_metas.iter().cloned());
        let results = apply_pair_delta(
            &base.results,
            &self.results_added,
            &self.results_removed,
            "result",
        )?;
        let reported = apply_pair_delta(&base.reported, &self.reported_added, &[], "reported")?;
        // Merge the touched cells over the base's sorted cell list: both
        // sides sorted by key, one linear walk. An empty replacement
        // deletes the cell.
        let mut cells: Vec<(CellKey, Vec<u64>)> =
            Vec::with_capacity(base.cells.len() + self.cells_changed.len());
        let mut prev_key: Option<&CellKey> = None;
        for (key, _) in &self.cells_changed {
            if prev_key.is_some_and(|p| p >= key) {
                return Err("delta cell keys not strictly sorted".into());
            }
            prev_key = Some(key);
        }
        let (mut bi, mut di) = (0, 0);
        while bi < base.cells.len() || di < self.cells_changed.len() {
            let take_delta = match (base.cells.get(bi), self.cells_changed.get(di)) {
                (Some((bk, _)), Some((dk, _))) => {
                    if bk == dk {
                        bi += 1; // replaced (or deleted) below
                        true
                    } else {
                        dk < bk
                    }
                }
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => unreachable!(),
            };
            if take_delta {
                let (key, entries) = &self.cells_changed[di];
                di += 1;
                if !entries.is_empty() {
                    cells.push((key.clone(), entries.clone()));
                }
            } else {
                cells.push(base.cells[bi].clone());
                bi += 1;
            }
        }
        Ok(EngineState {
            window_capacity: self.window_capacity,
            grid_cells: self.grid_cells,
            window,
            metas,
            stream_counts: self.stream_counts.clone(),
            results,
            reported,
            stats: self.stats,
            cells,
        })
    }
}

/// `base ∪ added ∖ removed` over sorted pair lists, verifying that every
/// added pair is genuinely absent from the base and every removed pair
/// genuinely present (set semantics — anything else means the delta does
/// not belong to this base).
fn apply_pair_delta(
    base: &[(u64, u64)],
    added: &[(u64, u64)],
    removed: &[(u64, u64)],
    what: &str,
) -> Result<Vec<(u64, u64)>, String> {
    for w in [added, removed] {
        if w.windows(2).any(|p| p[0] >= p[1]) {
            return Err(format!("delta {what} pairs not strictly sorted"));
        }
    }
    for p in removed {
        if base.binary_search(p).is_err() {
            return Err(format!("delta removes {what} pair {p:?} absent from base"));
        }
    }
    let mut out = Vec::with_capacity(base.len() + added.len() - removed.len());
    let (mut bi, mut ai) = (0, 0);
    let mut ri = 0;
    while bi < base.len() || ai < added.len() {
        let take_add = match (base.get(bi), added.get(ai)) {
            (Some(b), Some(a)) => {
                if a == b {
                    return Err(format!("delta adds {what} pair {a:?} already in base"));
                }
                a < b
            }
            (None, Some(_)) => true,
            _ => false,
        };
        if take_add {
            out.push(added[ai]);
            ai += 1;
        } else {
            let b = base[bi];
            bi += 1;
            if removed.get(ri) == Some(&b) {
                ri += 1;
                continue;
            }
            out.push(b);
        }
    }
    Ok(out)
}

/// Computes the [`StateDelta`] taking `base` to `next`, or `Err` when the
/// two snapshots do not stand in the append/evict-only relationship the
/// delta encoding requires (callers fall back to a full checkpoint).
///
/// Guaranteed inverse of [`StateDelta::apply`]:
/// `delta_between(base, next)?.apply(base)? == *next` — the delta-chain
/// parity tests assert this bit-for-bit across both engines.
pub fn delta_between(base: &EngineState, next: &EngineState) -> Result<StateDelta, String> {
    if base.window_capacity != next.window_capacity {
        return Err(format!(
            "window capacity changed {} -> {}",
            base.window_capacity, next.window_capacity
        ));
    }
    if base.grid_cells != next.grid_cells {
        return Err(format!(
            "grid resolution changed {} -> {}",
            base.grid_cells, next.grid_cells
        ));
    }
    // Survivors of the base window are exactly its entries whose id is
    // still live in `next`; evict-only-from-front means they must form a
    // suffix of the base *and* a prefix of the successor, bit-identical
    // metas included. Any mismatch refuses the delta.
    let next_ids: FxHashSet<u64> = next.window.iter().map(|&(_, id)| id).collect();
    let evict_count = base
        .window
        .iter()
        .take_while(|(_, id)| !next_ids.contains(id))
        .count();
    let survivors = base.window.len() - evict_count;
    if survivors > next.window.len() || base.window[evict_count..] != next.window[..survivors] {
        return Err("base window is not an evict-prefix of the successor".into());
    }
    if base.metas[evict_count..] != next.metas[..survivors] {
        return Err("a surviving window entry's meta changed".into());
    }
    let evicted: Vec<u64> = base.window[..evict_count]
        .iter()
        .map(|&(_, id)| id)
        .collect();
    let arrivals: Vec<(u64, u64)> = next.window[survivors..].to_vec();
    let arrival_metas: Vec<TupleMeta> = next.metas[survivors..].to_vec();

    let (results_added, results_removed) = diff_sorted_pairs(&base.results, &next.results);
    let (reported_added, reported_removed) = diff_sorted_pairs(&base.reported, &next.reported);
    if !reported_removed.is_empty() {
        return Err(format!(
            "reported pair {:?} vanished (history must be append-only)",
            reported_removed[0]
        ));
    }

    // Touched cells: one merge walk over the two sorted cell lists.
    let mut cells_changed: Vec<(CellKey, Vec<u64>)> = Vec::new();
    let (mut bi, mut ni) = (0, 0);
    while bi < base.cells.len() || ni < next.cells.len() {
        match (base.cells.get(bi), next.cells.get(ni)) {
            (Some((bk, bv)), Some((nk, nv))) => {
                if bk == nk {
                    if bv != nv {
                        cells_changed.push((nk.clone(), nv.clone()));
                    }
                    bi += 1;
                    ni += 1;
                } else if bk < nk {
                    cells_changed.push((bk.clone(), Vec::new()));
                    bi += 1;
                } else {
                    cells_changed.push((nk.clone(), nv.clone()));
                    ni += 1;
                }
            }
            (Some((bk, _)), None) => {
                cells_changed.push((bk.clone(), Vec::new()));
                bi += 1;
            }
            (None, Some((nk, nv))) => {
                cells_changed.push((nk.clone(), nv.clone()));
                ni += 1;
            }
            (None, None) => unreachable!(),
        }
    }

    Ok(StateDelta {
        window_capacity: next.window_capacity,
        grid_cells: next.grid_cells,
        evicted,
        arrivals,
        arrival_metas,
        stream_counts: next.stream_counts.clone(),
        results_added,
        results_removed,
        reported_added,
        stats: next.stats,
        cells_changed,
    })
}

/// Sorted pair lists partitioned by side: `(in next only, in base only)`.
type PairDiff = (Vec<(u64, u64)>, Vec<(u64, u64)>);

fn diff_sorted_pairs(base: &[(u64, u64)], next: &[(u64, u64)]) -> PairDiff {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut bi, mut ni) = (0, 0);
    while bi < base.len() || ni < next.len() {
        match (base.get(bi), next.get(ni)) {
            (Some(b), Some(n)) => {
                if b == n {
                    bi += 1;
                    ni += 1;
                } else if b < n {
                    removed.push(*b);
                    bi += 1;
                } else {
                    added.push(*n);
                    ni += 1;
                }
            }
            (Some(b), None) => {
                removed.push(*b);
                bi += 1;
            }
            (None, Some(n)) => {
                added.push(*n);
                ni += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::{Record, Schema};
    use ter_stream::ProbTuple;
    use ter_text::{Dictionary, TokenSet, TopicVector};

    /// A minimal hand-built meta (field-literal; validation only looks at
    /// id/stream/timestamp/arity).
    fn meta(id: u64, stream_id: usize, timestamp: u64) -> TupleMeta {
        let schema = Schema::new(vec!["a", "b"]);
        let mut dict = Dictionary::new();
        let rec = Record::from_texts(&schema, id, &[Some("x"), Some("y")], &mut dict);
        TupleMeta {
            id,
            stream_id,
            timestamp,
            tuple: ProbTuple::certain(rec),
            main_bounds: vec![ter_text::Interval::point(0.1); 2],
            main_expect: vec![0.1; 2],
            aux_bounds: vec![],
            size_bounds: vec![ter_text::Interval::point(1.0); 2],
            topics: TopicVector::zeros(1),
            possibly_topical: false,
            possible_tokens: TokenSet::empty(),
        }
    }

    fn valid_state() -> EngineState {
        EngineState {
            window_capacity: 4,
            grid_cells: 5,
            window: vec![(0, 10), (1, 11)],
            metas: vec![meta(10, 0, 0), meta(11, 1, 1)],
            stream_counts: vec![1, 1],
            results: vec![(10, 11)],
            reported: vec![(10, 11)],
            stats: PruneStats::default(),
            cells: vec![(vec![0, 0].into_boxed_slice(), vec![10, 11])],
        }
    }

    #[test]
    fn valid_state_passes() {
        valid_state().validate(2, 4, 5).unwrap();
    }

    type Mutation = Box<dyn Fn(&mut EngineState)>;

    #[test]
    fn rejections() {
        let cases: Vec<(&str, Mutation)> = vec![
            ("capacity", Box::new(|s| s.window_capacity = 8)),
            ("grid resolution", Box::new(|s| s.grid_cells = 9)),
            (
                "cell key range",
                Box::new(|s| s.cells[0].0 = vec![0, 5].into_boxed_slice()),
            ),
            ("meta count", Box::new(|s| s.metas.truncate(1))),
            ("timestamps", Box::new(|s| s.window[1].0 = 0)),
            ("id mismatch", Box::new(|s| s.window[1].1 = 99)),
            ("stream counts", Box::new(|s| s.stream_counts = vec![2, 0])),
            ("result liveness", Box::new(|s| s.results = vec![(10, 99)])),
            (
                "result normalization",
                Box::new(|s| s.results = vec![(11, 10)]),
            ),
            ("cell entry liveness", Box::new(|s| s.cells[0].1.push(99))),
            (
                "cell key dims",
                Box::new(|s| s.cells[0].0 = vec![0].into_boxed_slice()),
            ),
            (
                "cell key order",
                Box::new(|s| {
                    let c = s.cells[0].clone();
                    s.cells.push(c);
                }),
            ),
        ];
        for (label, mutate) in cases {
            let mut s = valid_state();
            mutate(&mut s);
            assert!(s.validate(2, 4, 5).is_err(), "{label} accepted");
        }
    }

    #[test]
    fn window_overflow_rejected() {
        let s = valid_state();
        assert!(s.validate(2, 1, 5).is_err());
    }

    /// A successor of `valid_state`: entry 10 evicted, 12 and 13 arrived,
    /// one result removed with the eviction, one added, one cell touched,
    /// one cell gone, one cell new.
    fn successor_state() -> EngineState {
        EngineState {
            window_capacity: 4,
            grid_cells: 5,
            window: vec![(1, 11), (2, 12), (3, 13)],
            metas: vec![meta(11, 1, 1), meta(12, 0, 2), meta(13, 0, 3)],
            stream_counts: vec![2, 1],
            results: vec![(11, 12)],
            reported: vec![(10, 11), (11, 12)],
            stats: PruneStats {
                total_pairs: 7,
                ..PruneStats::default()
            },
            cells: vec![
                (vec![0, 0].into_boxed_slice(), vec![11, 12]),
                (vec![1, 1].into_boxed_slice(), vec![13]),
            ],
        }
    }

    #[test]
    fn delta_round_trips_bit_identically() {
        let base = valid_state();
        let next = successor_state();
        let d = delta_between(&base, &next).unwrap();
        assert_eq!(d.evicted, vec![10]);
        assert_eq!(d.arrivals, vec![(2, 12), (3, 13)]);
        assert_eq!(d.churn(), 3);
        assert_eq!(d.results_added, vec![(11, 12)]);
        assert_eq!(d.results_removed, vec![(10, 11)]);
        assert_eq!(d.reported_added, vec![(11, 12)]);
        // One replaced cell, one new; validates apply merges correctly.
        assert_eq!(d.cells_changed.len(), 2);
        assert_eq!(d.apply(&base).unwrap(), next);
        next.validate(2, 4, 5).unwrap();
    }

    #[test]
    fn empty_delta_between_equal_states() {
        let s = valid_state();
        let d = delta_between(&s, &s).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.churn(), 0);
        assert_eq!(d.apply(&s).unwrap(), s);
    }

    #[test]
    fn full_turnover_delta_round_trips() {
        let base = valid_state();
        // Nothing survives: both base entries evicted, two fresh ones.
        let next = EngineState {
            window_capacity: 4,
            grid_cells: 5,
            window: vec![(5, 20), (6, 21)],
            metas: vec![meta(20, 0, 5), meta(21, 1, 6)],
            stream_counts: vec![1, 1],
            results: vec![],
            reported: vec![(10, 11)],
            stats: PruneStats::default(),
            cells: vec![(vec![2, 2].into_boxed_slice(), vec![20, 21])],
        };
        let d = delta_between(&base, &next).unwrap();
        assert_eq!(d.evicted, vec![10, 11]);
        assert_eq!(d.churn(), 4);
        assert_eq!(d.apply(&base).unwrap(), next);
    }

    #[test]
    fn delta_refusals() {
        let base = valid_state();
        // Changed capacity.
        let mut next = successor_state();
        next.window_capacity = 8;
        assert!(delta_between(&base, &next).is_err());
        // Reordered window (survivor out of order is not append/evict).
        let mut next = base.clone();
        next.window.swap(0, 1);
        next.metas.swap(0, 1);
        assert!(delta_between(&base, &next).is_err());
        // A surviving meta mutated in place.
        let mut next = successor_state();
        next.metas[0].stream_id = 0;
        assert!(delta_between(&base, &next).is_err());
        // Reported history lost a pair.
        let mut next = successor_state();
        next.reported.clear();
        assert!(delta_between(&base, &next).is_err());
    }

    #[test]
    fn apply_rejects_foreign_or_corrupt_deltas() {
        let base = valid_state();
        let good = delta_between(&base, &successor_state()).unwrap();
        // Wrong base: evicted id does not match the window front.
        let mut d = good.clone();
        d.evicted = vec![99];
        assert!(d.apply(&base).is_err());
        // Evicts more than the base holds.
        let mut d = good.clone();
        d.evicted = vec![10, 11, 12];
        assert!(d.apply(&base).is_err());
        // Adds a result pair the base already has.
        let mut d = good.clone();
        d.results_added = vec![(10, 11)];
        assert!(d.apply(&base).is_err());
        // Removes a result pair the base does not have.
        let mut d = good.clone();
        d.results_removed = vec![(1, 2)];
        assert!(d.apply(&base).is_err());
        // Meta count disagrees with arrivals.
        let mut d = good.clone();
        d.arrival_metas.pop();
        assert!(d.apply(&base).is_err());
        // Unsorted touched-cell keys.
        let mut d = good.clone();
        d.cells_changed.reverse();
        assert!(d.apply(&base).is_err());
        // Capacity mismatch.
        let mut d = good.clone();
        d.window_capacity = 16;
        assert!(d.apply(&base).is_err());
        // The unmodified delta still applies (the clones above did not
        // poison it).
        assert_eq!(d.window_capacity, 16);
        assert_eq!(good.apply(&base).unwrap(), successor_state());
    }
}
