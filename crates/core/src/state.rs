//! Engine-agnostic snapshot of a TER-iDS engine's dynamic state.
//!
//! [`EngineState`] captures everything that changes as arrivals are
//! consumed — the sliding window, per-tuple metadata (including the
//! imputed probabilistic tuples), per-stream live counts, the live result
//! set `ES`, the reported-pair history, cumulative prune statistics, and
//! the ER-grid's per-cell entry lists. Everything an engine derives from
//! the static [`TerContext`](crate::TerContext) (pivots, rules, indexes,
//! keywords) is deliberately *not* here: the offline pre-computation is a
//! deterministic function of the repository, so a restarted service
//! rebuilds it and grafts this state on top.
//!
//! The representation is canonical — window entries in arrival order,
//! result/reported pairs sorted, grid cells sorted by key with entries in
//! insertion order — so the sequential `TerIdsEngine` and the sharded
//! `ShardedTerIdsEngine` export *equal* states at the same stream
//! position (their per-cell op histories are identical by the PR 2
//! sharding invariant), and a checkpoint taken from one engine restores
//! into the other.
//!
//! Import is validating, not trusting: [`EngineState::validate`] checks
//! every cross-field invariant (window/meta agreement, timestamp
//! monotonicity, id uniqueness, stream-count consistency, pair liveness,
//! cell-key shape) and returns `Err` instead of panicking, because the
//! recovery path must survive arbitrary on-disk corruption that slipped
//! past the frame CRCs.

use ter_index::CellKey;
use ter_text::fxhash::FxHashSet;

use crate::meta::TupleMeta;
use crate::metrics::PruneStats;

/// A snapshot of one engine's dynamic state. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineState {
    /// Window capacity `w` the snapshot was taken under (import into an
    /// engine with a different `w` is refused — the result set would not
    /// be comparable).
    pub window_capacity: usize,
    /// ER-grid resolution (cells per dimension) the cell keys were
    /// computed under. Import into a grid of a different resolution is
    /// refused — the keys would land in wrong rectangles and evictions
    /// would miss them.
    pub grid_cells: u16,
    /// `(timestamp, tuple id)` of every unexpired tuple, oldest first.
    pub window: Vec<(u64, u64)>,
    /// Metadata of the unexpired tuples, in window (arrival) order.
    pub metas: Vec<TupleMeta>,
    /// Live tuple count per stream. Kept verbatim (not re-derived) because
    /// trailing zero entries from fully-expired streams are part of the
    /// engine's observable accounting state.
    pub stream_counts: Vec<usize>,
    /// The live result set `ES`, `(min, max)`-normalized and sorted.
    pub results: Vec<(u64, u64)>,
    /// Every pair ever reported, `(min, max)`-normalized and sorted.
    pub reported: Vec<(u64, u64)>,
    /// Cumulative pruning counters.
    pub stats: PruneStats,
    /// ER-grid cells: `(cell key, payload ids in entry order)`, sorted by
    /// key. Entry order is preserved exactly so the restored grid is
    /// indistinguishable from the crashed one (cell aggregates are left
    /// folds over the entry sequence; same sequence ⇒ same bits).
    pub cells: Vec<(CellKey, Vec<u64>)>,
}

impl EngineState {
    /// Checks every invariant an importing engine relies on, against the
    /// engine's schema arity, configured window capacity, and grid
    /// resolution. Returns a description of the first violation.
    pub fn validate(
        &self,
        arity: usize,
        window_capacity: usize,
        grid_cells: u16,
    ) -> Result<(), String> {
        if self.window_capacity != window_capacity {
            return Err(format!(
                "state window capacity {} != engine window {}",
                self.window_capacity, window_capacity
            ));
        }
        if self.grid_cells != grid_cells {
            return Err(format!(
                "state grid resolution {} != engine grid_cells {}",
                self.grid_cells, grid_cells
            ));
        }
        if self.window.len() > window_capacity {
            return Err(format!(
                "{} window entries exceed capacity {}",
                self.window.len(),
                window_capacity
            ));
        }
        if self.metas.len() != self.window.len() {
            return Err(format!(
                "{} metas for {} window entries",
                self.metas.len(),
                self.window.len()
            ));
        }
        let mut ids: FxHashSet<u64> = FxHashSet::default();
        let mut prev_ts: Option<u64> = None;
        for ((ts, id), meta) in self.window.iter().zip(&self.metas) {
            if prev_ts.is_some_and(|p| p > *ts) {
                return Err(format!("window timestamps decrease at {ts}"));
            }
            prev_ts = Some(*ts);
            if meta.id != *id || meta.timestamp != *ts {
                return Err(format!(
                    "meta ({}, t={}) does not match window entry ({id}, t={ts})",
                    meta.id, meta.timestamp
                ));
            }
            if meta.arity() != arity {
                return Err(format!(
                    "meta {id} has arity {} but engine schema has {arity}",
                    meta.arity()
                ));
            }
            if !ids.insert(*id) {
                return Err(format!("duplicate tuple id {id}"));
            }
        }
        // Stream counts must agree with the live metas: each live stream's
        // count exact, extra (historical) entries zero.
        let mut derived: Vec<usize> = Vec::new();
        for meta in &self.metas {
            if derived.len() <= meta.stream_id {
                derived.resize(meta.stream_id + 1, 0);
            }
            derived[meta.stream_id] += 1;
        }
        if self.stream_counts.len() < derived.len() {
            return Err(format!(
                "stream_counts has {} entries but live tuples span {} streams",
                self.stream_counts.len(),
                derived.len()
            ));
        }
        for (sid, &count) in self.stream_counts.iter().enumerate() {
            let expect = derived.get(sid).copied().unwrap_or(0);
            if count != expect {
                return Err(format!(
                    "stream {sid} count {count} but {expect} live tuples"
                ));
            }
        }
        for &(a, b) in &self.results {
            if a >= b {
                return Err(format!("result pair ({a}, {b}) not normalized"));
            }
            if !ids.contains(&a) || !ids.contains(&b) {
                return Err(format!("result pair ({a}, {b}) references expired tuples"));
            }
        }
        for &(a, b) in &self.reported {
            if a >= b {
                return Err(format!("reported pair ({a}, {b}) not normalized"));
            }
        }
        let mut prev_key: Option<&CellKey> = None;
        for (key, entries) in &self.cells {
            if key.len() != arity {
                return Err(format!(
                    "cell key of {} dims in a {arity}-dim grid",
                    key.len()
                ));
            }
            if key.iter().any(|&k| k >= grid_cells) {
                return Err(format!("cell key {key:?} outside a {grid_cells}-cell grid"));
            }
            if prev_key.is_some_and(|p| p >= key) {
                return Err("cell keys not strictly sorted".into());
            }
            prev_key = Some(key);
            if entries.is_empty() {
                return Err("empty grid cell persisted".into());
            }
            for id in entries {
                if !ids.contains(id) {
                    return Err(format!("cell entry {id} is not a live tuple"));
                }
            }
        }
        Ok(())
    }

    /// Number of live tuples in the snapshot.
    pub fn live_count(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::{Record, Schema};
    use ter_stream::ProbTuple;
    use ter_text::{Dictionary, TokenSet, TopicVector};

    /// A minimal hand-built meta (field-literal; validation only looks at
    /// id/stream/timestamp/arity).
    fn meta(id: u64, stream_id: usize, timestamp: u64) -> TupleMeta {
        let schema = Schema::new(vec!["a", "b"]);
        let mut dict = Dictionary::new();
        let rec = Record::from_texts(&schema, id, &[Some("x"), Some("y")], &mut dict);
        TupleMeta {
            id,
            stream_id,
            timestamp,
            tuple: ProbTuple::certain(rec),
            main_bounds: vec![ter_text::Interval::point(0.1); 2],
            main_expect: vec![0.1; 2],
            aux_bounds: vec![],
            size_bounds: vec![ter_text::Interval::point(1.0); 2],
            topics: TopicVector::zeros(1),
            possibly_topical: false,
            possible_tokens: TokenSet::empty(),
        }
    }

    fn valid_state() -> EngineState {
        EngineState {
            window_capacity: 4,
            grid_cells: 5,
            window: vec![(0, 10), (1, 11)],
            metas: vec![meta(10, 0, 0), meta(11, 1, 1)],
            stream_counts: vec![1, 1],
            results: vec![(10, 11)],
            reported: vec![(10, 11)],
            stats: PruneStats::default(),
            cells: vec![(vec![0, 0].into_boxed_slice(), vec![10, 11])],
        }
    }

    #[test]
    fn valid_state_passes() {
        valid_state().validate(2, 4, 5).unwrap();
    }

    type Mutation = Box<dyn Fn(&mut EngineState)>;

    #[test]
    fn rejections() {
        let cases: Vec<(&str, Mutation)> = vec![
            ("capacity", Box::new(|s| s.window_capacity = 8)),
            ("grid resolution", Box::new(|s| s.grid_cells = 9)),
            (
                "cell key range",
                Box::new(|s| s.cells[0].0 = vec![0, 5].into_boxed_slice()),
            ),
            ("meta count", Box::new(|s| s.metas.truncate(1))),
            ("timestamps", Box::new(|s| s.window[1].0 = 0)),
            ("id mismatch", Box::new(|s| s.window[1].1 = 99)),
            ("stream counts", Box::new(|s| s.stream_counts = vec![2, 0])),
            ("result liveness", Box::new(|s| s.results = vec![(10, 99)])),
            (
                "result normalization",
                Box::new(|s| s.results = vec![(11, 10)]),
            ),
            ("cell entry liveness", Box::new(|s| s.cells[0].1.push(99))),
            (
                "cell key dims",
                Box::new(|s| s.cells[0].0 = vec![0].into_boxed_slice()),
            ),
            (
                "cell key order",
                Box::new(|s| {
                    let c = s.cells[0].clone();
                    s.cells.push(c);
                }),
            ),
        ];
        for (label, mutate) in cases {
            let mut s = valid_state();
            mutate(&mut s);
            assert!(s.validate(2, 4, 5).is_err(), "{label} accepted");
        }
    }

    #[test]
    fn window_overflow_rejected() {
        let s = valid_state();
        assert!(s.validate(2, 1, 5).is_err());
    }
}
