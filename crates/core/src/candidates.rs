//! Candidate selection and pair accounting, shared by the sequential
//! engine and the sharded batch-parallel engine (`ter_exec`).
//!
//! Both engines must take identical decisions about *which* surfaced
//! tuples are examined (Theorem 4.1's topical inverted list, self/stream
//! filtering) and how never-examined pairs are attributed in the pruning
//! statistics — any divergence breaks the bit-identical-stats contract
//! their differential tests enforce. Generic over the meta storage so the
//! sequential engine's `TupleMeta` map and the sharded engine's
//! `Arc<TupleMeta>` map use the same code path.

use std::borrow::Borrow;

use ter_text::fxhash::{FxHashMap, FxHashSet};

use crate::meta::TupleMeta;
use crate::metrics::PruneStats;

/// The candidates the pair-level cascade must examine for `probe`:
/// surfaced live tuples (restricted to the topical inverted list when the
/// probe cannot be topical — Theorem 4.1), excluding the probe itself and
/// same-stream tuples, in ascending-id order so any partition of the
/// returned slice is deterministic.
pub fn examined_candidates<'m, M: Borrow<TupleMeta>>(
    probe: &TupleMeta,
    surfaced: &FxHashSet<u64>,
    topical_ids: &FxHashSet<u64>,
    metas: &'m FxHashMap<u64, M>,
) -> Vec<&'m M> {
    let mut ids: Vec<u64> = if probe.possibly_topical {
        surfaced.iter().copied().collect()
    } else {
        topical_ids
            .iter()
            .copied()
            .filter(|id| surfaced.contains(id))
            .collect()
    };
    ids.sort_unstable();
    ids.into_iter()
        .filter(|&id| id != probe.id)
        .filter_map(|id| metas.get(&id))
        .filter(|m| {
            let m: &TupleMeta = (*m).borrow();
            m.stream_id != probe.stream_id
        })
        .collect()
}

/// Counts this arrival's candidate pairs into `stats`: `eligible` total
/// pairs (live tuples of other streams), plus bulk attribution of the
/// pairs never examined —
///
/// * topical probe: everything skipped was cell-pruned, and a cell
///   visited for a topical tuple can only fail the similarity check →
///   `sim`;
/// * non-topical probe: skipped tuples are the non-topical ones
///   (Theorem 4.1, `topic`) plus cell-pruned topical ones (`sim`).
///
/// Call after the examined candidates were decided (their outcomes are
/// tallied by the caller).
pub fn account_pairs<M: Borrow<TupleMeta>>(
    probe: &TupleMeta,
    examined: u64,
    stream_counts: &[usize],
    topical_ids: &FxHashSet<u64>,
    metas: &FxHashMap<u64, M>,
    stats: &mut PruneStats,
) {
    let eligible: u64 = stream_counts
        .iter()
        .enumerate()
        .filter(|(sid, _)| *sid != probe.stream_id)
        .map(|(_, &c)| c as u64)
        .sum();
    stats.total_pairs += eligible;
    if probe.possibly_topical {
        stats.sim += eligible - examined;
    } else {
        let topical_eligible: u64 = topical_ids
            .iter()
            .filter(|id| {
                metas
                    .get(id)
                    .is_some_and(|m| m.borrow().stream_id != probe.stream_id)
            })
            .count() as u64;
        stats.topic += eligible - topical_eligible;
        stats.sim += topical_eligible - examined;
    }
}
