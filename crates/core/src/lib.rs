//! TER-iDS: Topic-aware Entity Resolution over incomplete Data Streams.
//!
//! The primary contribution of the reproduced paper (Ren, Lian, Ghazinour,
//! SIGMOD 2021): continuously report pairs of tuples from sliding windows
//! of different incomplete streams that (a) are topic-related and (b)
//! represent the same entity with probability above `α` (problem statement,
//! §2.3), while imputing missing attributes on the fly via CDD rules.
//!
//! Crate layout:
//!
//! * [`params`] — the Table 5 parameters (`α`, `ρ = γ/d`, `w`, …);
//! * [`meta`] — per-tuple derived state: imputed probabilistic tuple,
//!   pivot-distance bounds/expectations, token-size bounds, topic vectors,
//!   and the grid region (§5.2's per-tuple aggregates);
//! * [`pruning`] — Theorems 4.1–4.3 with Lemmas 4.1–4.3 (topic-keyword,
//!   similarity-upper-bound via token sizes and via pivots, Paley–Zygmund
//!   probability upper bound);
//! * [`refine`] — exact `Pr_TER-iDS` (Equation 2) and the
//!   instance-pair-level early termination of Theorem 4.4;
//! * [`engine`] — Algorithm 1/2: the full TER-iDS processor with ER-grid
//!   maintenance and the imputation/pruning/refinement pipeline;
//! * [`baselines`] — the five §6 competitors (`Ij+GER`, `CDD+ER`, `DD+ER`,
//!   `er+ER`, `con+ER`);
//! * [`metrics`] — precision/recall/F-score (Equation 6) and pruning-power
//!   accounting (Figure 4);
//! * [`results`] — the maintained entity result set `ES` with expiry;
//! * [`state`] — the engine-agnostic dynamic-state snapshot
//!   ([`EngineState`]) behind the `ter_store` checkpoint/recovery layer.

pub mod baselines;
pub mod candidates;
pub mod engine;
pub mod meta;
pub mod metrics;
pub mod params;
pub mod pruning;
pub mod refine;
pub mod results;
pub mod state;

#[cfg(test)]
mod proptests;

pub use baselines::NaiveEngine;
pub use engine::{PruningMode, StepOutput, TerContext, TerIdsEngine};
pub use meta::{ErAggregate, TupleMeta};
pub use metrics::{evaluate, Evaluation, PhaseTiming, PruneStats, StageMetrics};
pub use params::Params;
pub use refine::{decide_pair, PairContext, PairDecision};
pub use results::ResultSet;
pub use state::{delta_between, EngineState, StateDelta};

use ter_stream::Arrival;

/// Common interface over the TER-iDS engine and all baselines so that the
/// benchmark harness can drive any method uniformly.
pub trait ErProcessor {
    /// Method label as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Consumes one arriving tuple, returning newly reported matches and
    /// per-phase timings for this step.
    fn process(&mut self, arrival: &Arrival) -> StepOutput;

    /// Consumes a batch of arrivals, returning one [`StepOutput`] per
    /// arrival in arrival order. The default processes the batch one
    /// tuple at a time, so every engine and baseline can be driven with
    /// the same batched loop; batch-parallel engines override this with
    /// an implementation that fans the batch out to worker threads while
    /// producing identical outputs.
    fn step_batch(&mut self, batch: &[Arrival]) -> Vec<StepOutput> {
        batch.iter().map(|a| self.process(a)).collect()
    }

    /// Matches currently alive (both tuples unexpired) — the set `ES`.
    fn results(&self) -> &ResultSet;

    /// Every pair ever reported (for accuracy evaluation over a run).
    fn reported(&self) -> &ter_text::fxhash::FxHashSet<(u64, u64)>;

    /// Cumulative pruning statistics (all zeros for baselines that apply
    /// no pruning).
    fn prune_stats(&self) -> PruneStats;

    /// Cumulative per-phase timing.
    fn timing(&self) -> PhaseTiming;

    /// Execution-shape counters of a staged run ([`StageMetrics`]):
    /// barrier rounds, fanned refines, overlapped arrivals. Purely
    /// observational — results must not depend on them. Sequential
    /// engines and baselines keep the all-zero default.
    fn stage_metrics(&self) -> StageMetrics {
        StageMetrics::default()
    }
}
