//! The maintained entity result set `ES` (Algorithm 1/2).
//!
//! Stores currently-valid matching pairs with per-tuple adjacency so that
//! a tuple's expiry removes all its pairs in O(degree) (Algorithm 2
//! lines 4–5).

use ter_text::fxhash::{FxHashMap, FxHashSet};

/// Normalizes a pair to `(min, max)` id order.
#[inline]
pub fn norm_pair(a: u64, b: u64) -> (u64, u64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The live entity result set.
#[derive(Debug, Default, Clone)]
pub struct ResultSet {
    pairs: FxHashSet<(u64, u64)>,
    adj: FxHashMap<u64, FxHashSet<u64>>,
}

impl ResultSet {
    /// Creates an empty result set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a matching pair; returns `false` if already present.
    pub fn insert(&mut self, a: u64, b: u64) -> bool {
        assert_ne!(a, b, "a tuple cannot match itself");
        let pair = norm_pair(a, b);
        if !self.pairs.insert(pair) {
            return false;
        }
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
        true
    }

    /// Whether the pair is currently a result.
    pub fn contains(&self, a: u64, b: u64) -> bool {
        self.pairs.contains(&norm_pair(a, b))
    }

    /// Number of live pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no live pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Removes every pair involving `id` (tuple expiry); returns the
    /// dropped pairs, `(min, max)`-normalized and sorted — the retraction
    /// half of the window-delta stream standing queries fold.
    pub fn remove_involving(&mut self, id: u64) -> Vec<(u64, u64)> {
        let Some(partners) = self.adj.remove(&id) else {
            return Vec::new();
        };
        let mut removed = Vec::with_capacity(partners.len());
        for p in partners {
            let pair = norm_pair(id, p);
            if self.pairs.remove(&pair) {
                removed.push(pair);
            }
            if let Some(back) = self.adj.get_mut(&p) {
                back.remove(&id);
                if back.is_empty() {
                    self.adj.remove(&p);
                }
            }
        }
        removed.sort_unstable();
        removed
    }

    /// Ids currently matched with `id` (its adjacency row), in
    /// unspecified order — the index the query layer's match-atom joins
    /// probe instead of scanning all pairs.
    pub fn partners(&self, id: u64) -> impl Iterator<Item = u64> + '_ {
        self.adj
            .get(&id)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Iterates over live pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.pairs.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains_are_order_insensitive() {
        let mut es = ResultSet::new();
        assert!(es.insert(5, 2));
        assert!(es.contains(2, 5));
        assert!(es.contains(5, 2));
        assert!(!es.insert(2, 5)); // duplicate
        assert_eq!(es.len(), 1);
    }

    #[test]
    fn remove_involving_drops_all_pairs_of_a_tuple() {
        let mut es = ResultSet::new();
        es.insert(1, 2);
        es.insert(1, 3);
        es.insert(2, 3);
        // The dropped pairs come back normalized and sorted.
        assert_eq!(es.remove_involving(1), vec![(1, 2), (1, 3)]);
        assert_eq!(es.len(), 1);
        assert!(es.contains(2, 3));
        assert!(!es.contains(1, 2));
        // Removing again is a no-op.
        assert!(es.remove_involving(1).is_empty());
    }

    #[test]
    fn partners_reflect_live_adjacency() {
        let mut es = ResultSet::new();
        es.insert(1, 2);
        es.insert(3, 1);
        let mut p: Vec<u64> = es.partners(1).collect();
        p.sort_unstable();
        assert_eq!(p, vec![2, 3]);
        assert_eq!(es.partners(9).count(), 0);
        es.remove_involving(2);
        assert_eq!(es.partners(1).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn adjacency_cleanup_after_partner_expiry() {
        let mut es = ResultSet::new();
        es.insert(1, 2);
        es.remove_involving(2);
        assert!(es.is_empty());
        // 1's adjacency must be cleaned so re-insertion works.
        assert!(es.insert(1, 2));
        assert_eq!(es.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot match itself")]
    fn self_pair_panics() {
        let mut es = ResultSet::new();
        es.insert(7, 7);
    }

    #[test]
    fn iter_yields_normalized_pairs() {
        let mut es = ResultSet::new();
        es.insert(9, 4);
        let pairs: Vec<_> = es.iter().collect();
        assert_eq!(pairs, vec![(4, 9)]);
    }
}
