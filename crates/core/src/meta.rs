//! Per-tuple derived state and ER-grid aggregates (§5.2).
//!
//! When a tuple arrives and is imputed, the engine derives everything the
//! pruning rules will ever ask about it: main/auxiliary pivot-distance
//! bounds and expectations (for Lemmas 4.2/4.3), token-set-size bounds
//! (Lemma 4.1), the topic vector over *possible* tokens (Theorem 4.1), and
//! the rectangle of the converted space the imputed tuple occupies (its
//! ER-grid region). These are exactly the four aggregate kinds §5.2 stores
//! per tuple and, merged, per grid cell.

use ter_index::{Aggregate, Rect};
use ter_repo::PivotTable;
use ter_stream::ProbTuple;
use ter_text::{Interval, KeywordSet, TokenSet, TopicVector};

/// Flattened layout of per-(attribute, auxiliary-pivot) slots.
#[derive(Debug, Clone)]
pub struct AuxLayout {
    offsets: Vec<usize>,
}

impl AuxLayout {
    /// Computes the layout from the pivot table.
    pub fn new(pivots: &PivotTable) -> Self {
        let mut offsets = Vec::with_capacity(pivots.arity() + 1);
        let mut off = 0;
        for j in 0..pivots.arity() {
            offsets.push(off);
            off += pivots.aux_count(j);
        }
        offsets.push(off);
        Self { offsets }
    }

    /// Slot of attribute `j`'s auxiliary pivot `a`.
    pub fn slot(&self, j: usize, a: usize) -> usize {
        self.offsets[j] + a
    }

    /// Number of auxiliary pivots of attribute `j`.
    pub fn count(&self, j: usize) -> usize {
        self.offsets[j + 1] - self.offsets[j]
    }

    /// Total number of slots.
    pub fn total(&self) -> usize {
        *self.offsets.last().unwrap()
    }
}

/// Everything the pruning rules need to know about one (imputed) tuple.
///
/// `PartialEq` is exact (every `f64` compared bitwise) — checkpoint
/// round-trips and recovery parity are asserted as bit-identity.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleMeta {
    /// Tuple id (unique across all streams).
    pub id: u64,
    /// Source stream.
    pub stream_id: usize,
    /// Arrival timestamp.
    pub timestamp: u64,
    /// The imputed probabilistic tuple `r^p`.
    pub tuple: ProbTuple,
    /// Per-attribute bounds `[lb_X_k, ub_X_k]` of the main-pivot distance
    /// over all instances (Lemma 4.2).
    pub main_bounds: Vec<Interval>,
    /// Per-attribute expectations `E(X_k)` of the main-pivot distance
    /// (Lemma 4.3).
    pub main_expect: Vec<f64>,
    /// Auxiliary-pivot distance bounds, flattened via [`AuxLayout`].
    pub aux_bounds: Vec<Interval>,
    /// Per-attribute token-set-size bounds `[|T⁻|, |T⁺|]` (Lemma 4.1).
    pub size_bounds: Vec<Interval>,
    /// Keyword vector over tokens occurring in *any* instance.
    pub topics: TopicVector,
    /// Whether some instance can contain a query keyword (`¬` this for
    /// both tuples ⇒ Theorem 4.1 prunes the pair).
    pub possibly_topical: bool,
    /// Union of tokens over all instances.
    pub possible_tokens: TokenSet,
}

impl TupleMeta {
    /// Derives the metadata for an imputed tuple.
    pub fn build(
        id: u64,
        stream_id: usize,
        timestamp: u64,
        tuple: ProbTuple,
        pivots: &PivotTable,
        layout: &AuxLayout,
        keywords: &KeywordSet,
    ) -> Self {
        let d = pivots.arity();
        let mut main_bounds = Vec::with_capacity(d);
        let mut main_expect = Vec::with_capacity(d);
        let mut aux_bounds = vec![Interval::empty(); layout.total()];
        let mut size_bounds = Vec::with_capacity(d);
        for j in 0..d {
            let mut mb = Interval::empty();
            let mut ex = 0.0;
            for (val, p) in tuple.attr_candidates(j) {
                let dist = pivots.convert_value(j, val);
                mb.expand(dist);
                ex += dist * p;
                for a in 0..layout.count(j) {
                    aux_bounds[layout.slot(j, a)].expand(pivots.aux_distance(j, a, val));
                }
            }
            main_bounds.push(mb);
            main_expect.push(ex);
            size_bounds.push(tuple.token_size_bounds(j));
        }
        let possible_tokens = tuple.possible_tokens();
        let topics = keywords.topic_vector(&possible_tokens);
        let possibly_topical = keywords.matches(&possible_tokens);
        Self {
            id,
            stream_id,
            timestamp,
            tuple,
            main_bounds,
            main_expect,
            aux_bounds,
            size_bounds,
            topics,
            possibly_topical,
            possible_tokens,
        }
    }

    /// Arity `d`.
    pub fn arity(&self) -> usize {
        self.main_bounds.len()
    }

    /// The rectangle of the converted space occupied by the imputed tuple —
    /// its ER-grid region (§5.2).
    pub fn region(&self) -> Rect {
        Rect::new(self.main_bounds.clone())
    }

    /// Total main-pivot distance bounds `[lb_X, ub_X] = Σ_k [lb_X_k, ub_X_k]`.
    pub fn total_main_bounds(&self) -> Interval {
        let lo = self.main_bounds.iter().map(|i| i.lo).sum();
        let hi = self.main_bounds.iter().map(|i| i.hi).sum();
        Interval::new(lo, hi)
    }

    /// Total expectation `E(X) = Σ_k E(X_k)`.
    pub fn total_main_expect(&self) -> f64 {
        self.main_expect.iter().sum()
    }

    /// The grid/cell aggregate contributed by this tuple.
    pub fn aggregate(&self) -> ErAggregate {
        ErAggregate {
            topics: self.topics.clone(),
            main: self.main_bounds.clone(),
            aux: self.aux_bounds.clone(),
            sizes: self.size_bounds.clone(),
        }
    }
}

/// The ER-grid cell aggregate (§5.2): topic vector, main/auxiliary pivot
/// distance intervals, and token-set-size intervals — merged over every
/// tuple intersecting the cell.
#[derive(Debug, Clone)]
pub struct ErAggregate {
    /// OR of tuple keyword vectors.
    pub topics: TopicVector,
    /// Bounds of main-pivot distances per attribute.
    pub main: Vec<Interval>,
    /// Bounds of auxiliary-pivot distances (flattened).
    pub aux: Vec<Interval>,
    /// Bounds of token-set sizes per attribute.
    pub sizes: Vec<Interval>,
}

impl Aggregate for ErAggregate {
    fn merge(&mut self, other: &Self) {
        self.topics.or_assign(&other.topics);
        for (a, b) in self.main.iter_mut().zip(&other.main) {
            a.expand_interval(b);
        }
        for (a, b) in self.aux.iter_mut().zip(&other.aux) {
            a.expand_interval(b);
        }
        for (a, b) in self.sizes.iter_mut().zip(&other.sizes) {
            a.expand_interval(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::{PivotConfig, Record, Repository, Schema};
    use ter_stream::AttrCandidates;
    use ter_text::Dictionary;

    fn setup() -> (Repository, PivotTable, Dictionary, Schema) {
        let schema = Schema::new(vec!["title", "tags"]);
        let mut dict = Dictionary::new();
        let rows = [
            ("space cowboy adventure", "scifi western"),
            ("high school romance", "drama comedy"),
            ("mecha battle future", "scifi action"),
            ("cooking master challenge", "comedy food"),
        ];
        let recs = rows
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                Record::from_texts(&schema, i as u64, &[Some(a), Some(b)], &mut dict)
            })
            .collect();
        let repo = Repository::from_records(schema.clone(), recs);
        let pivots = PivotTable::select(&repo, &PivotConfig::default());
        (repo, pivots, dict, schema)
    }

    #[test]
    fn certain_tuple_has_point_bounds() {
        let (_, pivots, mut dict, schema) = setup();
        let layout = AuxLayout::new(&pivots);
        let kw = KeywordSet::parse("scifi", &dict);
        let r = Record::from_texts(
            &schema,
            10,
            &[Some("space cowboy"), Some("scifi")],
            &mut dict,
        );
        let meta = TupleMeta::build(10, 0, 0, ProbTuple::certain(r), &pivots, &layout, &kw);
        for j in 0..2 {
            assert_eq!(meta.main_bounds[j].width(), 0.0);
            assert!((meta.main_expect[j] - meta.main_bounds[j].lo).abs() < 1e-12);
        }
        assert!(meta.possibly_topical);
    }

    #[test]
    fn uncertain_tuple_bounds_cover_candidates_and_expectation_inside() {
        let (_, pivots, mut dict, schema) = setup();
        let layout = AuxLayout::new(&pivots);
        let kw = KeywordSet::universe();
        let base = Record::from_texts(&schema, 11, &[Some("space cowboy"), None], &mut dict);
        let c1 = ter_text::tokenize("scifi western", &mut dict);
        let c2 = ter_text::tokenize("comedy food", &mut dict);
        let cand = AttrCandidates::normalized(1, vec![(c1.clone(), 3.0), (c2.clone(), 1.0)]);
        let pt = ProbTuple::new(base, vec![cand]);
        let meta = TupleMeta::build(11, 0, 0, pt, &pivots, &layout, &kw);
        let d1 = pivots.convert_value(1, &c1);
        let d2 = pivots.convert_value(1, &c2);
        assert!(meta.main_bounds[1].contains(d1));
        assert!(meta.main_bounds[1].contains(d2));
        let expect = 0.75 * d1 + 0.25 * d2;
        assert!((meta.main_expect[1] - expect).abs() < 1e-12);
        assert!(meta.main_bounds[1].contains(meta.main_expect[1]));
    }

    #[test]
    fn topicality_covers_possible_instances() {
        let (_, pivots, mut dict, schema) = setup();
        let layout = AuxLayout::new(&pivots);
        let base = Record::from_texts(&schema, 12, &[Some("cooking show"), None], &mut dict);
        let scifi = ter_text::tokenize("scifi", &mut dict);
        let kw = KeywordSet::parse("scifi", &dict);
        let cand = AttrCandidates::normalized(1, vec![(scifi, 0.1)]);
        let pt = ProbTuple::new(base, vec![cand]);
        let meta = TupleMeta::build(12, 0, 0, pt, &pivots, &layout, &kw);
        // Only a low-probability instance is topical — but "possibly" must
        // still be true (Theorem 4.1 needs certainty to prune).
        assert!(meta.possibly_topical);
        assert_eq!(meta.topics.count_ones(), 1);
    }

    #[test]
    fn non_topical_tuple() {
        let (_, pivots, mut dict, schema) = setup();
        let layout = AuxLayout::new(&pivots);
        let r = Record::from_texts(
            &schema,
            13,
            &[Some("cooking show"), Some("food")],
            &mut dict,
        );
        let kw = KeywordSet::parse("scifi", &dict);
        let meta = TupleMeta::build(13, 0, 0, ProbTuple::certain(r), &pivots, &layout, &kw);
        assert!(!meta.possibly_topical);
    }

    #[test]
    fn aggregate_merge_covers_both() {
        let (_, pivots, mut dict, schema) = setup();
        let layout = AuxLayout::new(&pivots);
        let kw = KeywordSet::universe();
        let r1 = Record::from_texts(
            &schema,
            1,
            &[Some("space cowboy"), Some("scifi")],
            &mut dict,
        );
        let r2 = Record::from_texts(
            &schema,
            2,
            &[Some("romance"), Some("drama comedy long tags here")],
            &mut dict,
        );
        let m1 = TupleMeta::build(1, 0, 0, ProbTuple::certain(r1), &pivots, &layout, &kw);
        let m2 = TupleMeta::build(2, 0, 1, ProbTuple::certain(r2), &pivots, &layout, &kw);
        let mut agg = m1.aggregate();
        agg.merge(&m2.aggregate());
        for j in 0..2 {
            assert!(agg.main[j].contains_interval(&m1.main_bounds[j]));
            assert!(agg.main[j].contains_interval(&m2.main_bounds[j]));
            assert!(agg.sizes[j].contains_interval(&m2.size_bounds[j]));
        }
    }

    #[test]
    fn region_matches_main_bounds() {
        let (_, pivots, mut dict, schema) = setup();
        let layout = AuxLayout::new(&pivots);
        let kw = KeywordSet::universe();
        let r = Record::from_texts(
            &schema,
            3,
            &[Some("mecha battle"), Some("action")],
            &mut dict,
        );
        let meta = TupleMeta::build(3, 0, 0, ProbTuple::certain(r), &pivots, &layout, &kw);
        let region = meta.region();
        assert_eq!(region.dim(), 2);
        for j in 0..2 {
            assert_eq!(*region.dim_interval(j), meta.main_bounds[j]);
        }
    }

    #[test]
    fn total_bounds_sum_dimensions() {
        let (_, pivots, mut dict, schema) = setup();
        let layout = AuxLayout::new(&pivots);
        let kw = KeywordSet::universe();
        let r = Record::from_texts(
            &schema,
            4,
            &[Some("space cowboy"), Some("scifi western")],
            &mut dict,
        );
        let meta = TupleMeta::build(4, 0, 0, ProbTuple::certain(r), &pivots, &layout, &kw);
        let t = meta.total_main_bounds();
        let sum_lo: f64 = meta.main_bounds.iter().map(|i| i.lo).sum();
        assert!((t.lo - sum_lo).abs() < 1e-12);
        assert!((meta.total_main_expect() - meta.main_expect.iter().sum::<f64>()).abs() < 1e-12);
    }
}
