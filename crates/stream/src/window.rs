//! Sliding windows over data streams (Definition 2).
//!
//! The paper adopts the count-based model: `W_t` holds the `w` most recent
//! tuples; at each new timestamp the oldest tuple expires. The time-based
//! model (reference \[39\]) is sketched as an easy extension — provided
//! here as [`TimeWindow`], which may expire several tuples at once.

use std::collections::VecDeque;

/// Count-based sliding window of fixed capacity `w`.
#[derive(Debug, Clone)]
pub struct SlidingWindow<T> {
    w: usize,
    buf: VecDeque<(u64, T)>,
}

impl<T> SlidingWindow<T> {
    /// Creates a window holding at most `w` items.
    ///
    /// # Panics
    /// Panics if `w == 0`.
    pub fn new(w: usize) -> Self {
        assert!(w > 0, "window size must be positive");
        Self {
            w,
            buf: VecDeque::with_capacity(w + 1),
        }
    }

    /// Capacity `w`.
    pub fn capacity(&self) -> usize {
        self.w
    }

    /// Current number of unexpired items.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pushes an item arriving at `timestamp`; returns the expired oldest
    /// item when the window was full (Algorithm 1 lines 7–9 evict exactly
    /// this tuple from the ER-grid and result set).
    ///
    /// Simultaneous arrivals (equal timestamps) are legal: eviction is
    /// count-based, so ties resolve by arrival order, which the single
    /// ordered step stage makes deterministic.
    ///
    /// # Panics
    /// Panics (debug builds) if timestamps decrease.
    pub fn push(&mut self, timestamp: u64, item: T) -> Option<(u64, T)> {
        debug_assert!(
            self.buf.back().is_none_or(|(t, _)| *t <= timestamp),
            "timestamps must be non-decreasing"
        );
        self.buf.push_back((timestamp, item));
        if self.buf.len() > self.w {
            self.buf.pop_front()
        } else {
            None
        }
    }

    /// Iterates over `(timestamp, item)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.buf.iter().map(|(t, x)| (*t, x))
    }

    /// The oldest item, if any.
    pub fn oldest(&self) -> Option<(u64, &T)> {
        self.buf.front().map(|(t, x)| (*t, x))
    }

    /// The newest item, if any.
    pub fn newest(&self) -> Option<(u64, &T)> {
        self.buf.back().map(|(t, x)| (*t, x))
    }
}

/// Time-based sliding window: keeps items with `timestamp > now − span`.
#[derive(Debug, Clone)]
pub struct TimeWindow<T> {
    span: u64,
    buf: VecDeque<(u64, T)>,
}

impl<T> TimeWindow<T> {
    /// Creates a window covering the most recent `span` time units.
    ///
    /// # Panics
    /// Panics if `span == 0`.
    pub fn new(span: u64) -> Self {
        assert!(span > 0, "window span must be positive");
        Self {
            span,
            buf: VecDeque::new(),
        }
    }

    /// Current number of unexpired items.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pushes an item arriving at `timestamp` and returns every expired
    /// item (several tuples can share a timestamp in the time-based model,
    /// so several can expire at once).
    pub fn push(&mut self, timestamp: u64, item: T) -> Vec<(u64, T)> {
        debug_assert!(
            self.buf.back().is_none_or(|(t, _)| *t <= timestamp),
            "timestamps must be non-decreasing"
        );
        self.buf.push_back((timestamp, item));
        let mut expired = Vec::new();
        // Window covers (now − span, now]; with unsigned timestamps nothing
        // can expire before `span` time units have elapsed.
        if timestamp >= self.span {
            let cutoff = timestamp - self.span;
            while let Some((t, _)) = self.buf.front() {
                if *t <= cutoff {
                    expired.push(self.buf.pop_front().unwrap());
                } else {
                    break;
                }
            }
        }
        expired
    }

    /// Iterates over `(timestamp, item)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.buf.iter().map(|(t, x)| (*t, x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_window_expires_fifo() {
        let mut w = SlidingWindow::new(3);
        assert_eq!(w.push(0, "a"), None);
        assert_eq!(w.push(1, "b"), None);
        assert_eq!(w.push(2, "c"), None);
        assert_eq!(w.push(3, "d"), Some((0, "a")));
        assert_eq!(w.push(4, "e"), Some((1, "b")));
        assert_eq!(w.len(), 3);
        let items: Vec<&str> = w.iter().map(|(_, x)| *x).collect();
        assert_eq!(items, vec!["c", "d", "e"]);
    }

    #[test]
    fn count_window_oldest_newest() {
        let mut w = SlidingWindow::new(2);
        assert!(w.oldest().is_none());
        w.push(5, 50);
        w.push(6, 60);
        assert_eq!(w.oldest(), Some((5, &50)));
        assert_eq!(w.newest(), Some((6, &60)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: SlidingWindow<u8> = SlidingWindow::new(0);
    }

    #[test]
    fn count_window_accepts_simultaneous_arrivals() {
        let mut w = SlidingWindow::new(2);
        assert_eq!(w.push(7, "a"), None);
        assert_eq!(w.push(7, "b"), None);
        // Ties evict in arrival order.
        assert_eq!(w.push(7, "c"), Some((7, "a")));
        assert_eq!(w.oldest(), Some((7, &"b")));
    }

    #[test]
    fn window_of_one() {
        let mut w = SlidingWindow::new(1);
        assert_eq!(w.push(0, 1), None);
        assert_eq!(w.push(1, 2), Some((0, 1)));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn time_window_expires_by_span() {
        let mut w = TimeWindow::new(10);
        assert!(w.push(0, "a").is_empty());
        assert!(w.push(5, "b").is_empty());
        // now=11: cutoff=1, expires item at t=0
        let expired = w.push(11, "c");
        assert_eq!(expired, vec![(0, "a")]);
        // now=30: cutoff=20, expires t=5 and t=11
        let expired = w.push(30, "d");
        assert_eq!(expired.len(), 2);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn time_window_same_timestamp_batch() {
        let mut w = TimeWindow::new(5);
        w.push(1, 1);
        w.push(1, 2);
        w.push(1, 3);
        assert_eq!(w.len(), 3);
        let expired = w.push(10, 4);
        assert_eq!(expired.len(), 3);
    }
}
