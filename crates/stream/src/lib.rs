//! Stream substrate: incomplete data streams, sliding windows, and imputed
//! probabilistic tuples (Definitions 1, 2, and 4 of the paper).
//!
//! * [`StreamSet`] — `n ≥ 2` incomplete data streams merged into one
//!   arrival order (one tuple per timestamp, round-robin across streams,
//!   matching the paper's count-based model);
//! * [`SlidingWindow`] — the count-based window `W_t` of the `w` most
//!   recent tuples (Definition 2), plus the time-based variant the paper
//!   sketches as an extension;
//! * [`ProbTuple`] — the imputed probabilistic tuple `r^p` (Definition 4):
//!   mutually exclusive instances `r_{i,m}`, each with an existence
//!   probability, represented as per-missing-attribute candidate
//!   distributions whose product enumerates the instances.

pub mod prob;
pub mod window;

pub use prob::{AttrCandidates, Instance, ProbTuple};
pub use window::{SlidingWindow, TimeWindow};

use ter_repo::Record;

/// A tuple tagged with its source stream and arrival timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Which of the `n` streams produced the tuple.
    pub stream_id: usize,
    /// Global arrival timestamp (one tuple per timestamp).
    pub timestamp: u64,
    /// The (possibly incomplete) tuple.
    pub record: Record,
}

/// `n` incomplete data streams with a deterministic merged arrival order.
#[derive(Debug, Clone, Default)]
pub struct StreamSet {
    streams: Vec<Vec<Record>>,
}

impl StreamSet {
    /// Creates a stream set from per-stream tuple sequences.
    pub fn new(streams: Vec<Vec<Record>>) -> Self {
        Self { streams }
    }

    /// Number of streams `n`.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Total number of tuples across all streams.
    pub fn total_len(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// The tuples of stream `i`.
    pub fn stream(&self, i: usize) -> &[Record] {
        &self.streams[i]
    }

    /// Merges the streams round-robin into a single arrival sequence:
    /// timestamp `t` carries the `⌈t/n⌉`-th tuple of stream `t mod n`
    /// (skipping exhausted streams). This realizes the paper's "each record
    /// r_i arrives at time i" over multiple sources.
    pub fn arrivals(&self) -> Vec<Arrival> {
        let mut out = Vec::with_capacity(self.total_len());
        let mut cursors = vec![0usize; self.streams.len()];
        let mut timestamp = 0u64;
        loop {
            let mut progressed = false;
            for (sid, cursor) in cursors.iter_mut().enumerate() {
                if *cursor < self.streams[sid].len() {
                    out.push(Arrival {
                        stream_id: sid,
                        timestamp,
                        record: self.streams[sid][*cursor].clone(),
                    });
                    *cursor += 1;
                    timestamp += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Splits the merged arrival order into contiguous batches of at most
    /// `batch` arrivals — the unit consumed by batch-parallel processors
    /// (`ErProcessor::step_batch`). The concatenation of the batches is
    /// exactly [`StreamSet::arrivals`], so any batching preserves window
    /// semantics and result sets.
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn arrival_batches(&self, batch: usize) -> Vec<Vec<Arrival>> {
        assert!(batch > 0, "batch size must be positive");
        self.arrivals()
            .chunks(batch)
            .map(<[Arrival]>::to_vec)
            .collect()
    }

    /// Opens a replayable cursor over the merged arrival order, positioned
    /// at arrival index `start` and yielding batches of at most `batch`
    /// arrivals. A recovered service resumes its feed with
    /// `cursor_at(wal_batches * batch, batch)` — the cursor emits exactly
    /// the arrivals the crashed run had not yet committed to its WAL.
    ///
    /// The cursor seeks once (a binary search over round-robin rounds,
    /// `O(n log L)` for `n` streams of maximum length `L`) and then walks
    /// the streams in place: arrivals before `start` are never cloned, so
    /// resuming a long stream at a late position costs nothing proportional
    /// to the skipped prefix.
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn cursor_at(&self, start: usize, batch: usize) -> ArrivalCursor<'_> {
        assert!(batch > 0, "batch size must be positive");
        let total = self.total_len();
        // Seek with the clamped position; `pos` itself stays as given so
        // `pos()` keeps reporting the caller's resume point verbatim.
        let target = start.min(total);
        // In the round-robin merge every stream still holding tuples emits
        // exactly one per round, so the arrival emitted by stream `s` in
        // round `r` is `self.streams[s][r]`, and the number of arrivals in
        // rounds `< r` is `Σ_s min(len_s, r)` — monotonic in `r`, hence
        // binary-searchable for the round containing `pos`.
        let emitted_before =
            |r: usize| -> usize { self.streams.iter().map(|s| s.len().min(r)).sum() };
        let max_round = self.streams.iter().map(Vec::len).max().unwrap_or(0);
        let (mut lo, mut hi) = (0usize, max_round);
        while lo < hi {
            // Find the largest round with `emitted_before(round) <= target`.
            let mid = lo + (hi - lo).div_ceil(2);
            if emitted_before(mid) <= target {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let round = lo;
        // Walk within the round to the stream owning the target arrival.
        let mut into_round = target - emitted_before(round);
        let mut stream = 0;
        while into_round > 0 {
            if self.streams[stream].len() > round {
                into_round -= 1;
            }
            stream += 1;
        }
        ArrivalCursor {
            streams: &self.streams,
            round,
            stream,
            pos: start,
            total,
            batch,
            materialized: 0,
        }
    }
}

/// A resumable batch iterator over a [`StreamSet`]'s merged arrival order
/// (see [`StreamSet::cursor_at`]). Tracks its position so callers can
/// correlate emitted batches with WAL sequence numbers. Borrows the
/// stream set and clones records only as they are emitted.
#[derive(Debug, Clone)]
pub struct ArrivalCursor<'a> {
    streams: &'a [Vec<Record>],
    /// Round-robin round of the next arrival (its index within a stream).
    round: usize,
    /// Next stream id to consider within the current round.
    stream: usize,
    /// Global arrival index (== timestamp) of the next arrival.
    pos: usize,
    total: usize,
    batch: usize,
    materialized: usize,
}

impl ArrivalCursor<'_> {
    /// Index of the next arrival the cursor will emit.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Arrivals not yet emitted.
    pub fn remaining(&self) -> usize {
        self.total.saturating_sub(self.pos)
    }

    /// How many arrivals this cursor has cloned out of the stream set so
    /// far. A cursor resumed at a late position starts at 0 — the skipped
    /// prefix is never re-materialized (regression-tested).
    pub fn materialized(&self) -> usize {
        self.materialized
    }
}

impl Iterator for ArrivalCursor<'_> {
    type Item = Vec<Arrival>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.total {
            return None;
        }
        let mut out = Vec::with_capacity(self.batch.min(self.total - self.pos));
        while out.len() < self.batch && self.pos < self.total {
            if self.stream >= self.streams.len() {
                self.round += 1;
                self.stream = 0;
                continue;
            }
            if self.streams[self.stream].len() > self.round {
                out.push(Arrival {
                    stream_id: self.stream,
                    timestamp: self.pos as u64,
                    record: self.streams[self.stream][self.round].clone(),
                });
                self.pos += 1;
                self.materialized += 1;
            }
            self.stream += 1;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::Schema;
    use ter_text::Dictionary;

    fn rec(dict: &mut Dictionary, id: u64, text: &str) -> Record {
        let schema = Schema::new(vec!["a"]);
        Record::from_texts(&schema, id, &[Some(text)], dict)
    }

    #[test]
    fn arrivals_round_robin() {
        let mut d = Dictionary::new();
        let s = StreamSet::new(vec![
            vec![rec(&mut d, 1, "x"), rec(&mut d, 3, "y")],
            vec![rec(&mut d, 2, "z")],
        ]);
        let arr = s.arrivals();
        assert_eq!(arr.len(), 3);
        let ids: Vec<u64> = arr.iter().map(|a| a.record.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        let streams: Vec<usize> = arr.iter().map(|a| a.stream_id).collect();
        assert_eq!(streams, vec![0, 1, 0]);
        let ts: Vec<u64> = arr.iter().map(|a| a.timestamp).collect();
        assert_eq!(ts, vec![0, 1, 2]);
    }

    #[test]
    fn empty_streams_are_skipped() {
        let mut d = Dictionary::new();
        let s = StreamSet::new(vec![vec![], vec![rec(&mut d, 1, "x")], vec![]]);
        let arr = s.arrivals();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].stream_id, 1);
    }

    #[test]
    fn batches_concatenate_to_arrivals() {
        let mut d = Dictionary::new();
        let s = StreamSet::new(vec![
            vec![
                rec(&mut d, 1, "x"),
                rec(&mut d, 3, "y"),
                rec(&mut d, 5, "z"),
            ],
            vec![rec(&mut d, 2, "u"), rec(&mut d, 4, "v")],
        ]);
        let flat: Vec<u64> = s.arrivals().iter().map(|a| a.record.id).collect();
        for batch in 1..=6 {
            let batches = s.arrival_batches(batch);
            assert!(batches.iter().all(|b| b.len() <= batch && !b.is_empty()));
            let rejoined: Vec<u64> = batches.iter().flatten().map(|a| a.record.id).collect();
            assert_eq!(rejoined, flat, "batch size {batch}");
        }
    }

    #[test]
    fn no_streams() {
        let s = StreamSet::new(vec![]);
        assert!(s.arrivals().is_empty());
        assert_eq!(s.stream_count(), 0);
    }

    #[test]
    fn cursor_resumes_mid_stream() {
        let mut d = Dictionary::new();
        let s = StreamSet::new(vec![
            vec![
                rec(&mut d, 1, "x"),
                rec(&mut d, 3, "y"),
                rec(&mut d, 5, "z"),
            ],
            vec![rec(&mut d, 2, "u"), rec(&mut d, 4, "v")],
        ]);
        let flat = s.arrivals();
        for start in 0..=flat.len() + 1 {
            let mut cur = s.cursor_at(start, 2);
            assert_eq!(cur.pos(), start);
            assert_eq!(cur.remaining(), flat.len().saturating_sub(start));
            let replayed: Vec<Arrival> = cur.by_ref().flatten().collect();
            assert_eq!(replayed, flat[start.min(flat.len())..].to_vec());
            assert_eq!(cur.remaining(), 0);
            assert!(cur.next().is_none());
        }
    }

    /// Resuming at a late position must not re-materialize the skipped
    /// prefix: the cursor seeks once and clones only what it emits.
    #[test]
    fn late_resume_does_not_rematerialize_prefix() {
        let mut d = Dictionary::new();
        let streams: Vec<Vec<Record>> = (0..3)
            .map(|s| {
                (0..200)
                    .map(|i| rec(&mut d, 1000 * s + i, "w"))
                    .collect::<Vec<_>>()
            })
            .collect();
        let s = StreamSet::new(streams);
        let total = s.total_len();
        let start = total - 5;
        let mut cur = s.cursor_at(start, 2);
        assert_eq!(cur.materialized(), 0, "seek alone must clone nothing");
        let tail: Vec<Arrival> = cur.by_ref().flatten().collect();
        assert_eq!(cur.materialized(), 5, "only the emitted tail is cloned");
        assert_eq!(tail, s.arrivals()[start..].to_vec());
        // Ragged stream lengths exercise rounds where some streams are
        // exhausted: the seek must still land on the right arrival.
        let mut d = Dictionary::new();
        let ragged = StreamSet::new(vec![
            (0..7).map(|i| rec(&mut d, i, "a")).collect(),
            (0..1).map(|i| rec(&mut d, 100 + i, "b")).collect(),
            vec![],
            (0..23).map(|i| rec(&mut d, 200 + i, "c")).collect(),
        ]);
        let flat = ragged.arrivals();
        for start in 0..=flat.len() {
            let mut cur = ragged.cursor_at(start, 3);
            assert_eq!(cur.materialized(), 0);
            let replayed: Vec<Arrival> = cur.by_ref().flatten().collect();
            assert_eq!(replayed, flat[start..].to_vec(), "start {start}");
            assert_eq!(cur.materialized(), flat.len() - start);
        }
    }

    #[test]
    fn cursor_batches_match_arrival_batches() {
        let mut d = Dictionary::new();
        let s = StreamSet::new(vec![
            vec![rec(&mut d, 1, "x"), rec(&mut d, 3, "y")],
            vec![rec(&mut d, 2, "u")],
        ]);
        let batches: Vec<Vec<Arrival>> = s.cursor_at(0, 2).collect();
        assert_eq!(batches, s.arrival_batches(2));
    }
}
