//! Stream substrate: incomplete data streams, sliding windows, and imputed
//! probabilistic tuples (Definitions 1, 2, and 4 of the paper).
//!
//! * [`StreamSet`] — `n ≥ 2` incomplete data streams merged into one
//!   arrival order (one tuple per timestamp, round-robin across streams,
//!   matching the paper's count-based model);
//! * [`SlidingWindow`] — the count-based window `W_t` of the `w` most
//!   recent tuples (Definition 2), plus the time-based variant the paper
//!   sketches as an extension;
//! * [`ProbTuple`] — the imputed probabilistic tuple `r^p` (Definition 4):
//!   mutually exclusive instances `r_{i,m}`, each with an existence
//!   probability, represented as per-missing-attribute candidate
//!   distributions whose product enumerates the instances.

pub mod prob;
pub mod window;

pub use prob::{AttrCandidates, Instance, ProbTuple};
pub use window::{SlidingWindow, TimeWindow};

use ter_repo::Record;

/// A tuple tagged with its source stream and arrival timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Which of the `n` streams produced the tuple.
    pub stream_id: usize,
    /// Global arrival timestamp (one tuple per timestamp).
    pub timestamp: u64,
    /// The (possibly incomplete) tuple.
    pub record: Record,
}

/// `n` incomplete data streams with a deterministic merged arrival order.
#[derive(Debug, Clone, Default)]
pub struct StreamSet {
    streams: Vec<Vec<Record>>,
}

impl StreamSet {
    /// Creates a stream set from per-stream tuple sequences.
    pub fn new(streams: Vec<Vec<Record>>) -> Self {
        Self { streams }
    }

    /// Number of streams `n`.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Total number of tuples across all streams.
    pub fn total_len(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// The tuples of stream `i`.
    pub fn stream(&self, i: usize) -> &[Record] {
        &self.streams[i]
    }

    /// Merges the streams round-robin into a single arrival sequence:
    /// timestamp `t` carries the `⌈t/n⌉`-th tuple of stream `t mod n`
    /// (skipping exhausted streams). This realizes the paper's "each record
    /// r_i arrives at time i" over multiple sources.
    pub fn arrivals(&self) -> Vec<Arrival> {
        let mut out = Vec::with_capacity(self.total_len());
        let mut cursors = vec![0usize; self.streams.len()];
        let mut timestamp = 0u64;
        loop {
            let mut progressed = false;
            for (sid, cursor) in cursors.iter_mut().enumerate() {
                if *cursor < self.streams[sid].len() {
                    out.push(Arrival {
                        stream_id: sid,
                        timestamp,
                        record: self.streams[sid][*cursor].clone(),
                    });
                    *cursor += 1;
                    timestamp += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Splits the merged arrival order into contiguous batches of at most
    /// `batch` arrivals — the unit consumed by batch-parallel processors
    /// (`ErProcessor::step_batch`). The concatenation of the batches is
    /// exactly [`StreamSet::arrivals`], so any batching preserves window
    /// semantics and result sets.
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn arrival_batches(&self, batch: usize) -> Vec<Vec<Arrival>> {
        assert!(batch > 0, "batch size must be positive");
        self.arrivals()
            .chunks(batch)
            .map(<[Arrival]>::to_vec)
            .collect()
    }

    /// Opens a replayable cursor over the merged arrival order, positioned
    /// at arrival index `start` and yielding batches of at most `batch`
    /// arrivals. A recovered service resumes its feed with
    /// `cursor_at(wal_batches * batch, batch)` — the cursor emits exactly
    /// the arrivals the crashed run had not yet committed to its WAL.
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn cursor_at(&self, start: usize, batch: usize) -> ArrivalCursor {
        assert!(batch > 0, "batch size must be positive");
        ArrivalCursor {
            arrivals: self.arrivals(),
            pos: start,
            batch,
        }
    }
}

/// A resumable batch iterator over a [`StreamSet`]'s merged arrival order
/// (see [`StreamSet::cursor_at`]). Tracks its position so callers can
/// correlate emitted batches with WAL sequence numbers.
#[derive(Debug, Clone)]
pub struct ArrivalCursor {
    arrivals: Vec<Arrival>,
    pos: usize,
    batch: usize,
}

impl ArrivalCursor {
    /// Index of the next arrival the cursor will emit.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Arrivals not yet emitted.
    pub fn remaining(&self) -> usize {
        self.arrivals.len().saturating_sub(self.pos)
    }
}

impl Iterator for ArrivalCursor {
    type Item = Vec<Arrival>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.arrivals.len() {
            return None;
        }
        let end = (self.pos + self.batch).min(self.arrivals.len());
        let out = self.arrivals[self.pos..end].to_vec();
        self.pos = end;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::Schema;
    use ter_text::Dictionary;

    fn rec(dict: &mut Dictionary, id: u64, text: &str) -> Record {
        let schema = Schema::new(vec!["a"]);
        Record::from_texts(&schema, id, &[Some(text)], dict)
    }

    #[test]
    fn arrivals_round_robin() {
        let mut d = Dictionary::new();
        let s = StreamSet::new(vec![
            vec![rec(&mut d, 1, "x"), rec(&mut d, 3, "y")],
            vec![rec(&mut d, 2, "z")],
        ]);
        let arr = s.arrivals();
        assert_eq!(arr.len(), 3);
        let ids: Vec<u64> = arr.iter().map(|a| a.record.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        let streams: Vec<usize> = arr.iter().map(|a| a.stream_id).collect();
        assert_eq!(streams, vec![0, 1, 0]);
        let ts: Vec<u64> = arr.iter().map(|a| a.timestamp).collect();
        assert_eq!(ts, vec![0, 1, 2]);
    }

    #[test]
    fn empty_streams_are_skipped() {
        let mut d = Dictionary::new();
        let s = StreamSet::new(vec![vec![], vec![rec(&mut d, 1, "x")], vec![]]);
        let arr = s.arrivals();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].stream_id, 1);
    }

    #[test]
    fn batches_concatenate_to_arrivals() {
        let mut d = Dictionary::new();
        let s = StreamSet::new(vec![
            vec![
                rec(&mut d, 1, "x"),
                rec(&mut d, 3, "y"),
                rec(&mut d, 5, "z"),
            ],
            vec![rec(&mut d, 2, "u"), rec(&mut d, 4, "v")],
        ]);
        let flat: Vec<u64> = s.arrivals().iter().map(|a| a.record.id).collect();
        for batch in 1..=6 {
            let batches = s.arrival_batches(batch);
            assert!(batches.iter().all(|b| b.len() <= batch && !b.is_empty()));
            let rejoined: Vec<u64> = batches.iter().flatten().map(|a| a.record.id).collect();
            assert_eq!(rejoined, flat, "batch size {batch}");
        }
    }

    #[test]
    fn no_streams() {
        let s = StreamSet::new(vec![]);
        assert!(s.arrivals().is_empty());
        assert_eq!(s.stream_count(), 0);
    }

    #[test]
    fn cursor_resumes_mid_stream() {
        let mut d = Dictionary::new();
        let s = StreamSet::new(vec![
            vec![
                rec(&mut d, 1, "x"),
                rec(&mut d, 3, "y"),
                rec(&mut d, 5, "z"),
            ],
            vec![rec(&mut d, 2, "u"), rec(&mut d, 4, "v")],
        ]);
        let flat = s.arrivals();
        for start in 0..=flat.len() + 1 {
            let mut cur = s.cursor_at(start, 2);
            assert_eq!(cur.pos(), start);
            assert_eq!(cur.remaining(), flat.len().saturating_sub(start));
            let replayed: Vec<Arrival> = cur.by_ref().flatten().collect();
            assert_eq!(replayed, flat[start.min(flat.len())..].to_vec());
            assert_eq!(cur.remaining(), 0);
            assert!(cur.next().is_none());
        }
    }

    #[test]
    fn cursor_batches_match_arrival_batches() {
        let mut d = Dictionary::new();
        let s = StreamSet::new(vec![
            vec![rec(&mut d, 1, "x"), rec(&mut d, 3, "y")],
            vec![rec(&mut d, 2, "u")],
        ]);
        let batches: Vec<Vec<Arrival>> = s.cursor_at(0, 2).collect();
        assert_eq!(batches, s.arrival_batches(2));
    }
}
