//! Imputed probabilistic tuples `r^p` (Definition 4).
//!
//! An imputed tuple contains mutually exclusive instances `r_{i,m}`, each
//! with an existence probability summing to at most 1. We represent the
//! instance set compactly as one candidate distribution per *missing*
//! attribute (Equations 3/4 impute each missing attribute independently);
//! instances are the cartesian product, an instance's probability the
//! product of its per-attribute candidate probabilities. A complete tuple
//! is the degenerate case with a single instance of probability 1.
//!
//! When imputation finds no candidate for a missing attribute, the paper's
//! data simply keeps the attribute empty; we model that as a single
//! empty-token-set candidate with probability 1, so every tuple always has
//! at least one instance.

use ter_repo::Record;
use ter_text::{Interval, TokenSet};

/// Candidate imputed values for one missing attribute, with normalized
/// existence probabilities (Equation 3 for a single CDD, Equation 4 for
/// multiple CDDs).
///
/// `PartialEq` is exact (probabilities compared bitwise as `f64`) — the
/// persistence layer's recovery parity contract is bit-identity, not
/// approximate equality.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrCandidates {
    /// The missing attribute index.
    pub attr: usize,
    /// `(value, probability)` pairs; probabilities sum to 1 (± rounding).
    pub candidates: Vec<(TokenSet, f64)>,
}

impl AttrCandidates {
    /// Builds a candidate set, normalizing probabilities. An empty input
    /// becomes the "stays missing" distribution (one empty value, p = 1).
    pub fn normalized(attr: usize, mut candidates: Vec<(TokenSet, f64)>) -> Self {
        let total: f64 = candidates.iter().map(|(_, p)| p).sum();
        if candidates.is_empty() || total <= 0.0 {
            return Self {
                attr,
                candidates: vec![(TokenSet::empty(), 1.0)],
            };
        }
        for (_, p) in &mut candidates {
            *p /= total;
        }
        Self { attr, candidates }
    }

    /// Keeps only the `k` most probable candidates and renormalizes.
    /// Bounds the instance product for heavily ambiguous imputations
    /// (documented deviation, DESIGN.md §3).
    pub fn truncate_top_k(&mut self, k: usize) {
        if self.candidates.len() <= k {
            return;
        }
        self.candidates
            .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        self.candidates.truncate(k.max(1));
        let total: f64 = self.candidates.iter().map(|(_, p)| p).sum();
        for (_, p) in &mut self.candidates {
            *p /= total;
        }
    }
}

/// The imputed probabilistic tuple `r^p`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbTuple {
    /// The original (possibly incomplete) tuple `r`.
    pub base: Record,
    /// Candidate distributions, one per missing attribute of `base`,
    /// sorted by attribute index.
    pub imputed: Vec<AttrCandidates>,
}

impl ProbTuple {
    /// Wraps a tuple with its per-missing-attribute candidates.
    ///
    /// # Panics
    /// Panics if `imputed` does not cover exactly the missing attributes
    /// of `base`, or is not sorted by attribute.
    pub fn new(base: Record, imputed: Vec<AttrCandidates>) -> Self {
        let missing = base.missing_attrs();
        let covered: Vec<usize> = imputed.iter().map(|c| c.attr).collect();
        assert_eq!(
            covered, missing,
            "imputation must cover exactly the missing attributes"
        );
        assert!(imputed.iter().all(|c| !c.candidates.is_empty()));
        Self { base, imputed }
    }

    /// A complete tuple as a degenerate probabilistic tuple.
    pub fn certain(base: Record) -> Self {
        assert!(base.is_complete(), "certain() requires a complete tuple");
        Self {
            base,
            imputed: Vec::new(),
        }
    }

    /// Whether the tuple has exactly one instance with probability 1.
    pub fn is_certain(&self) -> bool {
        self.imputed.iter().all(|c| c.candidates.len() == 1)
    }

    /// Number of instances `|{r_{i,m}}|` (product of candidate counts).
    pub fn instance_count(&self) -> usize {
        self.imputed
            .iter()
            .map(|c| c.candidates.len())
            .product::<usize>()
            .max(1)
    }

    /// Enumerates all instances with their probabilities.
    pub fn instances(&self) -> InstanceIter<'_> {
        InstanceIter {
            tuple: self,
            odometer: vec![0; self.imputed.len()],
            done: false,
        }
    }

    /// The value of attribute `j` in instance `m` (odometer order).
    fn attr_of_instance(&self, odo: &[usize], j: usize) -> &TokenSet {
        if let Some(v) = self.base.attr(j) {
            return v;
        }
        let slot = self
            .imputed
            .iter()
            .position(|c| c.attr == j)
            .expect("missing attribute without candidates");
        &self.imputed[slot].candidates[odo[slot]].0
    }

    /// Token-set-size bounds `[|T⁻(r^p[A_j])|, |T⁺(r^p[A_j])|]` over all
    /// instances (the quantities of Lemma 4.1).
    pub fn token_size_bounds(&self, j: usize) -> Interval {
        if let Some(v) = self.base.attr(j) {
            return Interval::point(v.len() as f64);
        }
        let slot = self.imputed.iter().position(|c| c.attr == j).unwrap();
        let mut iv = Interval::empty();
        for (v, _) in &self.imputed[slot].candidates {
            iv.expand(v.len() as f64);
        }
        iv
    }

    /// Union of tokens over *all* instances — if a keyword is absent here,
    /// no instance can contain it (the certainty required by the topic
    /// keyword pruning, Theorem 4.1).
    pub fn possible_tokens(&self) -> TokenSet {
        let mut acc = self.base.all_tokens();
        for c in &self.imputed {
            for (v, _) in &c.candidates {
                acc = acc.union(v);
            }
        }
        acc
    }

    /// Candidate values (with probabilities) of attribute `j`; a present
    /// attribute yields its single value with probability 1.
    pub fn attr_candidates(&self, j: usize) -> Vec<(&TokenSet, f64)> {
        if let Some(v) = self.base.attr(j) {
            return vec![(v, 1.0)];
        }
        let slot = self.imputed.iter().position(|c| c.attr == j).unwrap();
        self.imputed[slot]
            .candidates
            .iter()
            .map(|(v, p)| (v, *p))
            .collect()
    }
}

/// One instance `r_{i,m}` of an imputed tuple.
#[derive(Debug, Clone)]
pub struct Instance<'a> {
    tuple: &'a ProbTuple,
    odometer: Vec<usize>,
    /// Existence probability `r_{i,m}.p`.
    pub prob: f64,
}

impl<'a> Instance<'a> {
    /// The instance's value on attribute `j`.
    pub fn attr(&self, j: usize) -> &'a TokenSet {
        self.tuple.attr_of_instance(&self.odometer, j)
    }

    /// Summed Jaccard similarity between two instances (Definition 5).
    pub fn similarity(&self, other: &Instance<'_>) -> f64 {
        let d = self.tuple.base.attrs.len();
        debug_assert_eq!(d, other.tuple.base.attrs.len());
        (0..d)
            .map(|j| self.attr(j).er_similarity(other.attr(j)))
            .sum()
    }

    /// Whether any attribute of the instance contains a token of `ts`.
    pub fn contains_any_token(&self, ts: &TokenSet) -> bool {
        let d = self.tuple.base.attrs.len();
        (0..d).any(|j| self.attr(j).intersects(ts))
    }
}

/// Iterator over all instances (odometer over candidate indices).
pub struct InstanceIter<'a> {
    tuple: &'a ProbTuple,
    odometer: Vec<usize>,
    done: bool,
}

impl<'a> Iterator for InstanceIter<'a> {
    type Item = Instance<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let prob = self
            .tuple
            .imputed
            .iter()
            .zip(&self.odometer)
            .map(|(c, &i)| c.candidates[i].1)
            .product::<f64>();
        let item = Instance {
            tuple: self.tuple,
            odometer: self.odometer.clone(),
            prob,
        };
        // Advance the odometer.
        let mut carried = true;
        for (slot, c) in self.tuple.imputed.iter().enumerate() {
            if !carried {
                break;
            }
            self.odometer[slot] += 1;
            if self.odometer[slot] < c.candidates.len() {
                carried = false;
            } else {
                self.odometer[slot] = 0;
            }
        }
        if carried {
            self.done = true;
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::Schema;
    use ter_text::Dictionary;

    fn schema() -> Schema {
        Schema::new(vec!["a", "b", "c"])
    }

    fn tset(d: &mut Dictionary, s: &str) -> TokenSet {
        ter_text::tokenize(s, d)
    }

    fn sample_tuple(d: &mut Dictionary) -> ProbTuple {
        let base = Record::from_texts(&schema(), 1, &[Some("x y"), None, None], d);
        let cand_b =
            AttrCandidates::normalized(1, vec![(tset(d, "p q"), 2.0), (tset(d, "p r"), 2.0)]);
        let cand_c = AttrCandidates::normalized(
            2,
            vec![
                (tset(d, "u"), 3.0),
                (tset(d, "v"), 1.0),
                (tset(d, "w"), 0.0),
            ],
        );
        ProbTuple::new(base, vec![cand_b, cand_c])
    }

    #[test]
    fn normalization_sums_to_one() {
        let mut d = Dictionary::new();
        let t = sample_tuple(&mut d);
        for c in &t.imputed {
            let sum: f64 = c.candidates.iter().map(|(_, p)| p).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn instance_probabilities_sum_to_one() {
        let mut d = Dictionary::new();
        let t = sample_tuple(&mut d);
        assert_eq!(t.instance_count(), 6);
        let total: f64 = t.instances().map(|i| i.prob).sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn instance_attr_resolution() {
        let mut d = Dictionary::new();
        let t = sample_tuple(&mut d);
        let first = t.instances().next().unwrap();
        assert_eq!(first.attr(0), t.base.attr(0).unwrap());
        assert_eq!(first.attr(1), &t.imputed[0].candidates[0].0);
    }

    #[test]
    fn certain_tuple_single_instance() {
        let mut d = Dictionary::new();
        let base = Record::from_texts(&schema(), 2, &[Some("x"), Some("y"), Some("z")], &mut d);
        let t = ProbTuple::certain(base);
        assert!(t.is_certain());
        assert_eq!(t.instance_count(), 1);
        let inst: Vec<_> = t.instances().collect();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].prob, 1.0);
    }

    #[test]
    fn empty_candidates_become_stay_missing() {
        let c = AttrCandidates::normalized(1, vec![]);
        assert_eq!(c.candidates.len(), 1);
        assert!(c.candidates[0].0.is_empty());
        assert_eq!(c.candidates[0].1, 1.0);
    }

    #[test]
    fn truncate_top_k_renormalizes() {
        let mut d = Dictionary::new();
        let mut c = AttrCandidates::normalized(
            0,
            vec![
                (tset(&mut d, "a"), 4.0),
                (tset(&mut d, "b"), 3.0),
                (tset(&mut d, "c"), 2.0),
                (tset(&mut d, "e"), 1.0),
            ],
        );
        c.truncate_top_k(2);
        assert_eq!(c.candidates.len(), 2);
        let sum: f64 = c.candidates.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Kept the two most probable.
        assert!((c.candidates[0].1 - 4.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn token_size_bounds() {
        let mut d = Dictionary::new();
        let t = sample_tuple(&mut d);
        assert_eq!(t.token_size_bounds(0), Interval::point(2.0));
        assert_eq!(t.token_size_bounds(1), Interval::point(2.0)); // both candidates size 2
        assert_eq!(t.token_size_bounds(2), Interval::point(1.0)); // all candidates size 1
    }

    #[test]
    fn token_size_bounds_span_candidate_sizes() {
        let mut d = Dictionary::new();
        let base = Record::from_texts(&schema(), 9, &[Some("x"), Some("y"), None], &mut d);
        let cand = AttrCandidates::normalized(
            2,
            vec![
                (tset(&mut d, "one"), 1.0),
                (tset(&mut d, "two three four"), 1.0),
            ],
        );
        let t = ProbTuple::new(base, vec![cand]);
        assert_eq!(t.token_size_bounds(2), Interval::new(1.0, 3.0));
    }

    #[test]
    fn possible_tokens_covers_all_candidates() {
        let mut d = Dictionary::new();
        let t = sample_tuple(&mut d);
        let all = t.possible_tokens();
        for word in ["x", "y", "p", "q", "r", "u", "v"] {
            let tok = d.lookup(word).unwrap();
            assert!(all.contains(tok), "missing {word}");
        }
    }

    #[test]
    fn instance_similarity_matches_manual() {
        let mut d = Dictionary::new();
        let s = schema();
        let a = ProbTuple::certain(Record::from_texts(
            &s,
            1,
            &[Some("x y"), Some("p q"), Some("u")],
            &mut d,
        ));
        let b = ProbTuple::certain(Record::from_texts(
            &s,
            2,
            &[Some("x y"), Some("p r"), Some("v")],
            &mut d,
        ));
        let ia = a.instances().next().unwrap();
        let ib = b.instances().next().unwrap();
        // attr0: 1.0, attr1: |{p}|/|{p,q,r}| = 1/3, attr2: 0
        assert!((ia.similarity(&ib) - (1.0 + 1.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cover exactly")]
    fn wrong_coverage_panics() {
        let mut d = Dictionary::new();
        let base = Record::from_texts(&schema(), 1, &[Some("x"), None, Some("z")], &mut d);
        // Covers attr 2 (present) instead of attr 1 (missing).
        let _ = ProbTuple::new(
            base,
            vec![AttrCandidates::normalized(
                2,
                vec![(tset(&mut d, "q"), 1.0)],
            )],
        );
    }

    #[test]
    fn attr_candidates_accessor() {
        let mut d = Dictionary::new();
        let t = sample_tuple(&mut d);
        assert_eq!(t.attr_candidates(0).len(), 1);
        assert_eq!(t.attr_candidates(1).len(), 2);
        assert_eq!(t.attr_candidates(2).len(), 3);
    }
}
