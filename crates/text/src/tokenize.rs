//! The tokenizer applied to every textual attribute value.
//!
//! The paper treats attribute values as bags of word tokens extracted from
//! unstructured text (Example 1 extracts "loss of weight" etc. from posts).
//! We normalize to ASCII-lowercase and split on any non-alphanumeric
//! character, dropping empty fragments. Tokens are interned into the shared
//! [`Dictionary`] and returned as a [`TokenSet`].

use crate::dict::Dictionary;
use crate::tokenset::TokenSet;

/// Tokenizes `text` into a [`TokenSet`], interning new words into `dict`.
///
/// ```
/// use ter_text::{tokenize, Dictionary};
/// let mut dict = Dictionary::new();
/// let ts = tokenize("Loss of weight, blurred-vision", &mut dict);
/// assert_eq!(ts.len(), 5); // loss, of, weight, blurred, vision
/// ```
pub fn tokenize(text: &str, dict: &mut Dictionary) -> TokenSet {
    let mut toks = Vec::new();
    let mut word = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            // Lowercase may expand to multiple chars for some scripts.
            for lc in ch.to_lowercase() {
                word.push(lc);
            }
        } else if !word.is_empty() {
            toks.push(dict.intern(&word));
            word.clear();
        }
    }
    if !word.is_empty() {
        toks.push(dict.intern(&word));
    }
    TokenSet::new(toks)
}

/// Tokenizes without interning: looks up existing tokens only and silently
/// drops unknown words. Used when matching user keywords against a frozen
/// dictionary (querying must not mutate shared state).
pub fn tokenize_readonly(text: &str, dict: &Dictionary) -> TokenSet {
    let mut toks = Vec::new();
    for raw in text.split(|c: char| !c.is_alphanumeric()) {
        if raw.is_empty() {
            continue;
        }
        let lowered = raw.to_lowercase();
        if let Some(tok) = dict.lookup(&lowered) {
            toks.push(tok);
        }
    }
    TokenSet::new(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        let mut d = Dictionary::new();
        let ts = tokenize("fever, low-spirit  cough!", &mut d);
        assert_eq!(ts.len(), 4);
        assert!(d.lookup("fever").is_some());
        assert!(d.lookup("spirit").is_some());
    }

    #[test]
    fn lowercases() {
        let mut d = Dictionary::new();
        let a = tokenize("Diabetes", &mut d);
        let b = tokenize("diabetes", &mut d);
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn duplicate_words_collapse() {
        let mut d = Dictionary::new();
        let ts = tokenize("drink more, sleep more", &mut d);
        assert_eq!(ts.len(), 3); // drink, more, sleep
    }

    #[test]
    fn empty_and_symbol_only_input() {
        let mut d = Dictionary::new();
        assert!(tokenize("", &mut d).is_empty());
        assert!(tokenize("--- !!! ,,,", &mut d).is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn numbers_are_tokens() {
        let mut d = Dictionary::new();
        let ts = tokenize("honda cb350 1972", &mut d);
        assert_eq!(ts.len(), 3);
        assert!(d.lookup("cb350").is_some());
    }

    #[test]
    fn readonly_drops_unknown_words() {
        let mut d = Dictionary::new();
        tokenize("known words here", &mut d);
        let ts = tokenize_readonly("known UNKNOWN here", &d);
        assert_eq!(ts.len(), 2);
        assert_eq!(d.len(), 3); // unchanged
    }

    #[test]
    fn readonly_matches_interned_tokens() {
        let mut d = Dictionary::new();
        let full = tokenize("red eye itchy", &mut d);
        let ro = tokenize_readonly("red eye itchy", &d);
        assert_eq!(full, ro);
    }
}
