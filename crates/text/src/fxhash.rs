//! A minimal FxHash-style hasher.
//!
//! The interning dictionary and several id-keyed maps in the system hash
//! small keys (short strings, `u32` tokens, tuple ids) on hot paths. SipHash's
//! HashDoS protection buys nothing here — all keys originate from our own
//! generators — so we use the multiply-xor scheme popularized by rustc's
//! `FxHasher`. Hand-rolled (≈20 lines) to keep the dependency set within the
//! allowed list (see DESIGN.md §6).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from rustc's FxHasher (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher; not DoS-resistant, very fast for short keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world");
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello");
        b.write(b"world");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
    }

    #[test]
    fn unaligned_tail_bytes_hash() {
        // Exercise the remainder path (lengths not divisible by 8).
        for len in 0..=17 {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            let v1 = h.finish();
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(v1, h2.finish(), "len={len}");
        }
    }
}
