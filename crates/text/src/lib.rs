//! Text substrate for the TER-iDS reproduction.
//!
//! Everything in the paper operates on *token sets* extracted from textual
//! attribute values: the similarity function (Definition 5) is a summed
//! per-attribute Jaccard similarity, topic matching (`ϖ(r, K)`) is token-set
//! membership, and the metric-space conversion used by all indexes is the
//! Jaccard *distance* to a pivot string.
//!
//! This crate provides the shared primitives:
//!
//! * [`Dictionary`] — string-to-[`Token`] interning so the hot loops work on
//!   `u32`s instead of strings;
//! * [`TokenSet`] — an immutable sorted set of tokens with allocation-free
//!   Jaccard similarity/distance ([`TokenSet::jaccard`],
//!   [`TokenSet::jaccard_distance`]);
//! * [`tokenize()`](tokenize::tokenize) — the tokenizer used for every attribute value;
//! * [`KeywordSet`] / [`TopicVector`] — query-topic membership and the
//!   Boolean aggregate vectors stored in index nodes and grid cells;
//! * [`Interval`] — closed `f64` intervals used by rules, aggregates, and
//!   pruning bounds throughout the system.

pub mod dict;
pub mod fxhash;
pub mod interval;
pub mod keywords;
pub mod tokenize;
pub mod tokenset;

pub use dict::{Dictionary, Token};
pub use interval::Interval;
pub use keywords::{KeywordSet, TopicVector};
pub use tokenize::tokenize;
pub use tokenset::TokenSet;

#[cfg(test)]
mod proptests;
