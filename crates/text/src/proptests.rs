//! Property-based tests for the text substrate.
//!
//! The pivot-based pruning of Lemma 4.2 and the metric-space conversion of
//! §5 are only sound if Jaccard distance is a genuine metric; these tests
//! check the metric axioms (and the other set-algebra identities) on random
//! token sets.

use proptest::prelude::*;

use crate::dict::Token;
use crate::interval::Interval;
use crate::tokenset::TokenSet;

fn arb_tokenset() -> impl Strategy<Value = TokenSet> {
    proptest::collection::vec(0u32..64, 0..24)
        .prop_map(|v| TokenSet::new(v.into_iter().map(Token).collect()))
}

proptest! {
    #[test]
    fn jaccard_is_symmetric(a in arb_tokenset(), b in arb_tokenset()) {
        prop_assert!((a.jaccard(&b) - b.jaccard(&a)).abs() < 1e-12);
    }

    #[test]
    fn jaccard_in_unit_range(a in arb_tokenset(), b in arb_tokenset()) {
        let s = a.jaccard(&b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn jaccard_self_is_one(a in arb_tokenset()) {
        prop_assert_eq!(a.jaccard(&a), 1.0);
    }

    /// Triangle inequality for Jaccard distance — the property Lemma 4.2
    /// (pivot-based similarity upper bound) depends on.
    #[test]
    fn jaccard_distance_triangle(
        a in arb_tokenset(), b in arb_tokenset(), c in arb_tokenset()
    ) {
        let ab = a.jaccard_distance(&b);
        let bc = b.jaccard_distance(&c);
        let ac = a.jaccard_distance(&c);
        prop_assert!(ac <= ab + bc + 1e-12, "ac={ac} ab={ab} bc={bc}");
    }

    #[test]
    fn inclusion_exclusion(a in arb_tokenset(), b in arb_tokenset()) {
        prop_assert_eq!(
            a.union(&b).len(),
            a.len() + b.len() - a.intersection_size(&b)
        );
    }

    #[test]
    fn intersects_iff_nonzero_intersection(a in arb_tokenset(), b in arb_tokenset()) {
        prop_assert_eq!(a.intersects(&b), a.intersection_size(&b) > 0);
    }

    #[test]
    fn union_contains_both(a in arb_tokenset(), b in arb_tokenset()) {
        let u = a.union(&b);
        for &t in a.tokens().iter().chain(b.tokens()) {
            prop_assert!(u.contains(t));
        }
    }

    #[test]
    fn tokenset_is_sorted_dedup(v in proptest::collection::vec(0u32..1000, 0..64)) {
        let s = TokenSet::new(v.into_iter().map(Token).collect());
        prop_assert!(s.tokens().windows(2).all(|w| w[0] < w[1]));
    }

    /// `min_gap` is the true minimum |x−y| over the two intervals —
    /// the case analysis in Lemma 4.2 must never overestimate.
    #[test]
    fn interval_min_gap_is_lower_bound(
        a in 0.0f64..1.0, wa in 0.0f64..0.5,
        b in 0.0f64..1.0, wb in 0.0f64..0.5,
        ta in 0.0f64..=1.0, tb in 0.0f64..=1.0,
    ) {
        let ia = Interval::new(a, a + wa);
        let ib = Interval::new(b, b + wb);
        // Arbitrary points inside each interval.
        let x = ia.lo + ta * (ia.hi - ia.lo);
        let y = ib.lo + tb * (ib.hi - ib.lo);
        prop_assert!(ia.min_gap(&ib) <= (x - y).abs() + 1e-12);
    }

    #[test]
    fn interval_expand_contains(vs in proptest::collection::vec(0.0f64..1.0, 1..16)) {
        let mut acc = Interval::empty();
        for &v in &vs {
            acc.expand(v);
        }
        for &v in &vs {
            prop_assert!(acc.contains(v));
        }
    }
}
