//! Query topic keywords and Boolean topic vectors.
//!
//! The TER-iDS problem statement filters pairs by `ϖ(r, K)`: whether a
//! tuple's token set contains at least one query keyword `k ∈ K`. The
//! indexes of §5 store per-node/per-cell *Boolean vectors* whose bits mark
//! the (non-)existence of each keyword under that node — enabling topic
//! keyword pruning (Theorem 4.1) without visiting the tuples.

use crate::dict::Dictionary;
use crate::tokenize::tokenize_readonly;
use crate::tokenset::TokenSet;

/// A set of query topic keywords `K`.
///
/// `K = ∅` is allowed and means "no tuple is topic-related" (so ER returns
/// nothing); to run un-filtered ER use [`KeywordSet::universe`], which makes
/// `ϖ` always true — the paper's "set K to the domain of all keywords".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordSet {
    /// When `true`, every tuple is considered topic-related.
    universe: bool,
    keywords: TokenSet,
}

impl KeywordSet {
    /// Builds a keyword set from tokens.
    pub fn new(keywords: TokenSet) -> Self {
        Self {
            universe: false,
            keywords,
        }
    }

    /// Parses whitespace/punctuation-separated keywords against an existing
    /// dictionary (unknown words can never match, so they are dropped).
    pub fn parse(text: &str, dict: &Dictionary) -> Self {
        Self::new(tokenize_readonly(text, dict))
    }

    /// The universe keyword set: matches every tuple (topic-unconstrained ER).
    pub fn universe() -> Self {
        Self {
            universe: true,
            keywords: TokenSet::empty(),
        }
    }

    /// Whether this is the universe set.
    pub fn is_universe(&self) -> bool {
        self.universe
    }

    /// The keyword tokens (empty for the universe set).
    pub fn tokens(&self) -> &TokenSet {
        &self.keywords
    }

    /// Number of keywords (`0` for the universe set).
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// Whether the set holds no keywords and is not the universe.
    pub fn is_empty(&self) -> bool {
        !self.universe && self.keywords.is_empty()
    }

    /// The Boolean topic function `ϖ(ts, K)`: does `ts` contain any keyword?
    #[inline]
    pub fn matches(&self, ts: &TokenSet) -> bool {
        self.universe || self.keywords.intersects(ts)
    }

    /// Builds the per-tuple topic vector: bit `i` set iff keyword `i`
    /// (in token order) occurs in `ts`.
    pub fn topic_vector(&self, ts: &TokenSet) -> TopicVector {
        if self.universe {
            return TopicVector::all_set(1);
        }
        let mut v = TopicVector::zeros(self.keywords.len());
        for (i, &k) in self.keywords.tokens().iter().enumerate() {
            if ts.contains(k) {
                v.set(i);
            }
        }
        v
    }
}

/// A compact bit vector marking keyword (non-)existence.
///
/// This is the aggregate `V` stored in DR-index nodes, ER-grid cells, and
/// imputed tuples (§5.1–5.2): an OR over the vectors of everything beneath.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TopicVector {
    bits: Vec<u64>,
    len: usize,
}

impl TopicVector {
    /// An all-zero vector for `len` keywords.
    pub fn zeros(len: usize) -> Self {
        Self {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-one vector for `len` keywords.
    pub fn all_set(len: usize) -> Self {
        let mut v = Self::zeros(len);
        for i in 0..len {
            v.set(i);
        }
        v
    }

    /// Number of keyword slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector tracks zero keywords.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Whether any bit is set — i.e. whether anything under this aggregate
    /// can satisfy the topic constraint.
    #[inline]
    pub fn any(&self) -> bool {
        self.bits.iter().any(|&w| w != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed 64-bit words backing the vector (persistence hook:
    /// round-trips through [`TopicVector::from_words`] bit-exactly).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a vector from its packed words (inverse of
    /// [`TopicVector::words`]).
    ///
    /// # Panics
    /// Panics if `words` is not exactly `len.div_ceil(64)` words long or
    /// sets bits at positions `>= len` — decoders validate before calling.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        if len % 64 != 0 {
            if let Some(last) = words.last() {
                assert_eq!(last >> (len % 64), 0, "stray bits beyond len");
            }
        }
        Self { bits: words, len }
    }

    /// ORs `other` into `self` (aggregate merge when a child is added).
    pub fn or_assign(&mut self, other: &TopicVector) {
        assert_eq!(self.len, other.len, "topic vector length mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn setup() -> (Dictionary, TokenSet, TokenSet) {
        let mut d = Dictionary::new();
        let a = tokenize("male loss of weight diabetes", &mut d);
        let b = tokenize("female fever cough pneumonia", &mut d);
        (d, a, b)
    }

    #[test]
    fn matches_on_shared_keyword() {
        let (d, a, b) = setup();
        let k = KeywordSet::parse("diabetes", &d);
        assert!(k.matches(&a));
        assert!(!k.matches(&b));
    }

    #[test]
    fn empty_keyword_set_matches_nothing() {
        let (d, a, _) = setup();
        let k = KeywordSet::parse("", &d);
        assert!(k.is_empty());
        assert!(!k.matches(&a));
    }

    #[test]
    fn universe_matches_everything() {
        let (_, a, b) = setup();
        let k = KeywordSet::universe();
        assert!(k.matches(&a) && k.matches(&b));
        assert!(k.matches(&TokenSet::empty()));
    }

    #[test]
    fn unknown_keywords_are_dropped() {
        let (d, a, _) = setup();
        let k = KeywordSet::parse("zebra diabetes", &d);
        assert_eq!(k.len(), 1);
        assert!(k.matches(&a));
    }

    #[test]
    fn topic_vector_marks_present_keywords() {
        let (d, a, _) = setup();
        let k = KeywordSet::parse("diabetes fever", &d);
        let v = k.topic_vector(&a);
        assert_eq!(v.count_ones(), 1);
        assert!(v.any());
    }

    #[test]
    fn topic_vector_or_merge() {
        let (d, a, b) = setup();
        let k = KeywordSet::parse("diabetes fever", &d);
        let mut va = k.topic_vector(&a);
        let vb = k.topic_vector(&b);
        va.or_assign(&vb);
        assert_eq!(va.count_ones(), 2);
    }

    #[test]
    fn topic_vector_bits_over_64() {
        let mut v = TopicVector::zeros(130);
        v.set(0);
        v.set(64);
        v.set(129);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(65) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn topic_vector_out_of_range_panics() {
        let mut v = TopicVector::zeros(4);
        v.set(4);
    }

    #[test]
    fn all_set_vector() {
        let v = TopicVector::all_set(70);
        assert_eq!(v.count_ones(), 70);
        assert!(v.get(69));
    }
}
