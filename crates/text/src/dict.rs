//! String interning: maps token strings to dense `u32` ids.
//!
//! A single [`Dictionary`] is shared by a dataset's repository, streams, and
//! query keywords so that equal strings always intern to the same [`Token`]
//! and the similarity hot loops never touch string data.

use crate::fxhash::FxHashMap;

/// An interned token id. Dense, starting at 0, unique per [`Dictionary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u32);

impl Token {
    /// The raw id, usable as a dense array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional string ↔ [`Token`] interner.
///
/// ```
/// use ter_text::Dictionary;
/// let mut dict = Dictionary::new();
/// let a = dict.intern("diabetes");
/// let b = dict.intern("diabetes");
/// assert_eq!(a, b);
/// assert_eq!(dict.resolve(a), "diabetes");
/// ```
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_str: FxHashMap<Box<str>, Token>,
    by_id: Vec<Box<str>>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its token (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> Token {
        if let Some(&tok) = self.by_str.get(s) {
            return tok;
        }
        let tok =
            Token(u32::try_from(self.by_id.len()).expect("dictionary exceeded u32::MAX entries"));
        let boxed: Box<str> = s.into();
        self.by_id.push(boxed.clone());
        self.by_str.insert(boxed, tok);
        tok
    }

    /// Looks up an already-interned string without inserting.
    pub fn lookup(&self, s: &str) -> Option<Token> {
        self.by_str.get(s).copied()
    }

    /// Resolves a token back to its string.
    ///
    /// # Panics
    /// Panics if `tok` was not produced by this dictionary.
    pub fn resolve(&self, tok: Token) -> &str {
        &self.by_id[tok.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates over `(Token, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Token, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (Token(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let t1 = d.intern("fever");
        let t2 = d.intern("fever");
        assert_eq!(t1, t2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn tokens_are_dense() {
        let mut d = Dictionary::new();
        let a = d.intern("a");
        let b = d.intern("b");
        let c = d.intern("c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn resolve_roundtrips() {
        let mut d = Dictionary::new();
        let words = ["loss", "of", "weight", "blurred", "vision"];
        let toks: Vec<_> = words.iter().map(|w| d.intern(w)).collect();
        for (w, t) in words.iter().zip(&toks) {
            assert_eq!(d.resolve(*t), *w);
        }
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut d = Dictionary::new();
        assert_eq!(d.lookup("absent"), None);
        assert_eq!(d.len(), 0);
        let t = d.intern("present");
        assert_eq!(d.lookup("present"), Some(t));
    }

    #[test]
    fn iter_preserves_order() {
        let mut d = Dictionary::new();
        d.intern("x");
        d.intern("y");
        let collected: Vec<_> = d.iter().map(|(t, s)| (t.0, s.to_owned())).collect();
        assert_eq!(collected, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.iter().count(), 0);
    }
}
