//! Immutable sorted token sets and the Jaccard similarity/distance on them.
//!
//! Definition 5 of the paper measures attribute similarity as
//! `|T(r[A]) ∩ T(r'[A])| / |T(r[A]) ∪ T(r'[A])|`. Keeping token sets sorted
//! lets both set sizes be computed with one linear merge and zero
//! allocations. Jaccard **distance** (`1 − similarity`) is a metric on sets,
//! which is the property the pivot-based pruning (Lemma 4.2) and the
//! metric-space conversion of §5.1–5.2 rely on.

use crate::dict::Token;

/// An immutable, deduplicated, sorted set of tokens.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TokenSet {
    tokens: Box<[Token]>,
}

impl TokenSet {
    /// Builds a token set from arbitrary tokens (sorts and deduplicates).
    pub fn new(mut tokens: Vec<Token>) -> Self {
        tokens.sort_unstable();
        tokens.dedup();
        Self {
            tokens: tokens.into_boxed_slice(),
        }
    }

    /// Builds from a slice already known to be strictly sorted.
    ///
    /// # Panics
    /// Panics (debug builds) if the invariant does not hold.
    pub fn from_sorted(tokens: Vec<Token>) -> Self {
        debug_assert!(
            tokens.windows(2).all(|w| w[0] < w[1]),
            "not strictly sorted"
        );
        Self {
            tokens: tokens.into_boxed_slice(),
        }
    }

    /// The empty token set (e.g. an empty attribute value).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of distinct tokens.
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the set has no tokens.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The sorted tokens.
    #[inline]
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, tok: Token) -> bool {
        self.tokens.binary_search(&tok).is_ok()
    }

    /// Whether the two sets share at least one token.
    ///
    /// Used by topic matching `ϖ(r, K)`: early-exits on the first hit.
    pub fn intersects(&self, other: &TokenSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.tokens.len() && j < other.tokens.len() {
            match self.tokens[i].cmp(&other.tokens[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Size of the intersection (linear merge, no allocation).
    pub fn intersection_size(&self, other: &TokenSet) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.tokens.len() && j < other.tokens.len() {
            match self.tokens[i].cmp(&other.tokens[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Size of the union (via inclusion–exclusion).
    pub fn union_size(&self, other: &TokenSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Jaccard similarity `|A∩B| / |A∪B|` in `[0,1]`.
    ///
    /// Two empty sets are defined to be identical (`1.0`), matching the
    /// convention that two absent attribute values agree; this keeps
    /// `jaccard_distance` a metric on the whole domain.
    pub fn jaccard(&self, other: &TokenSet) -> f64 {
        let inter = self.intersection_size(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Jaccard distance `1 − jaccard`, a metric (satisfies the triangle
    /// inequality), as required by Lemma 4.2 and the pivot conversion.
    #[inline]
    pub fn jaccard_distance(&self, other: &TokenSet) -> f64 {
        1.0 - self.jaccard(other)
    }

    /// The similarity used by the ER predicate (Definition 5): Jaccard,
    /// except that two *empty* values score 0 — an attribute that is
    /// absent on both sides carries no matching evidence (two extraction
    /// failures are not an agreement). The metric convention
    /// (`jaccard(∅, ∅) = 1`) is kept for pivot distances, where it is
    /// required for the triangle inequality.
    #[inline]
    pub fn er_similarity(&self, other: &TokenSet) -> f64 {
        if self.is_empty() && other.is_empty() {
            0.0
        } else {
            self.jaccard(other)
        }
    }

    /// Materialized union of two sets (used by rule discovery, not by the
    /// per-arrival hot path).
    pub fn union(&self, other: &TokenSet) -> TokenSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.tokens.len() && j < other.tokens.len() {
            match self.tokens[i].cmp(&other.tokens[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.tokens[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.tokens[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.tokens[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.tokens[i..]);
        out.extend_from_slice(&other.tokens[j..]);
        TokenSet::from_sorted(out)
    }
}

impl FromIterator<Token> for TokenSet {
    fn from_iter<I: IntoIterator<Item = Token>>(iter: I) -> Self {
        TokenSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ids: &[u32]) -> TokenSet {
        TokenSet::new(ids.iter().map(|&i| Token(i)).collect())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = TokenSet::new(vec![Token(3), Token(1), Token(3), Token(2)]);
        assert_eq!(s.tokens(), &[Token(1), Token(2), Token(3)]);
    }

    #[test]
    fn intersection_and_union_sizes() {
        let a = ts(&[1, 2, 3, 4]);
        let b = ts(&[3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 5);
    }

    #[test]
    fn jaccard_known_values() {
        let a = ts(&[1, 2, 3, 4]);
        let b = ts(&[3, 4, 5]);
        assert!((a.jaccard(&b) - 2.0 / 5.0).abs() < 1e-12);
        assert!((a.jaccard_distance(&b) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_identity() {
        let a = ts(&[7, 8, 9]);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(a.jaccard_distance(&a), 0.0);
    }

    #[test]
    fn jaccard_disjoint() {
        let a = ts(&[1, 2]);
        let b = ts(&[3, 4]);
        assert_eq!(a.jaccard(&b), 0.0);
        assert_eq!(a.jaccard_distance(&b), 1.0);
    }

    #[test]
    fn empty_sets_are_identical() {
        let e = TokenSet::empty();
        assert_eq!(e.jaccard(&e), 1.0);
        let a = ts(&[1]);
        assert_eq!(e.jaccard(&a), 0.0);
    }

    #[test]
    fn intersects_early_exit() {
        let a = ts(&[1, 5, 9]);
        assert!(a.intersects(&ts(&[9])));
        assert!(!a.intersects(&ts(&[2, 4, 8])));
        assert!(!a.intersects(&TokenSet::empty()));
    }

    #[test]
    fn contains_binary_search() {
        let a = ts(&[2, 4, 6, 8]);
        assert!(a.contains(Token(6)));
        assert!(!a.contains(Token(5)));
    }

    #[test]
    fn union_materializes() {
        let a = ts(&[1, 3]);
        let b = ts(&[2, 3, 4]);
        assert_eq!(a.union(&b), ts(&[1, 2, 3, 4]));
    }

    #[test]
    fn from_iter_collects() {
        let s: TokenSet = [Token(5), Token(1), Token(5)].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
