//! Closed `f64` intervals.
//!
//! Intervals appear everywhere in the paper: CDD distance constraints
//! `[ε.min, ε.max]` (Definition 3), token-set-size bounds
//! `[|T⁻|, |T⁺|]` (Lemma 4.1), pivot-distance bounds `[lb_X, ub_X]`
//! (Lemmas 4.2/4.3), and the per-node aggregate intervals of the aR-tree,
//! DR-index, and ER-grid (§5.1–5.2).

/// A closed interval `[lo, hi]` over `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint (inclusive).
    pub lo: f64,
    /// Upper endpoint (inclusive).
    pub hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    /// Panics (debug builds) if `lo > hi` or either endpoint is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(!lo.is_nan() && !hi.is_nan(), "NaN interval endpoint");
        debug_assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// The full Jaccard-distance range `[0, 1]`.
    pub fn unit() -> Self {
        Self::new(0.0, 1.0)
    }

    /// The "missing attribute" sentinel `[-1, -1]` used by the CDD-index
    /// (§5.1 indexes `A_x.I = [-1,-1]` for constrained-but-missing attributes).
    pub fn missing() -> Self {
        Self::new(-1.0, -1.0)
    }

    /// Whether this is the missing sentinel.
    pub fn is_missing(&self) -> bool {
        self.lo == -1.0 && self.hi == -1.0
    }

    /// An empty accumulator: `[+∞, −∞]`. `expand`ing it with any value or
    /// interval yields that value/interval; useful for building minimal
    /// bounding intervals over a collection.
    pub fn empty() -> Self {
        Self {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
        }
    }

    /// Whether the accumulator has not absorbed anything yet.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Interval width (`0` for the empty accumulator).
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// Membership test (inclusive on both ends).
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        !other.is_empty() && self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the two intervals share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo <= other.hi && other.lo <= self.hi
    }

    /// Grows the interval to include `v`.
    #[inline]
    pub fn expand(&mut self, v: f64) {
        if v < self.lo {
            self.lo = v;
        }
        if v > self.hi {
            self.hi = v;
        }
    }

    /// Grows the interval to include all of `other`.
    pub fn expand_interval(&mut self, other: &Interval) {
        if other.is_empty() {
            return;
        }
        self.expand(other.lo);
        self.expand(other.hi);
    }

    /// Minimum distance from `v` to any point of the interval (0 if inside).
    pub fn min_dist_to(&self, v: f64) -> f64 {
        if v < self.lo {
            self.lo - v
        } else if v > self.hi {
            v - self.hi
        } else {
            0.0
        }
    }

    /// Minimum |x − y| over x ∈ self, y ∈ other (0 if they intersect).
    ///
    /// This is exactly the `min_dist` case analysis of Lemma 4.2.
    pub fn min_gap(&self, other: &Interval) -> f64 {
        if self.lo > other.hi {
            self.lo - other.hi
        } else if other.lo > self.hi {
            other.lo - self.hi
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_inclusive_endpoints() {
        let i = Interval::new(0.2, 0.5);
        assert!(i.contains(0.2));
        assert!(i.contains(0.5));
        assert!(!i.contains(0.19));
        assert!(!i.contains(0.51));
    }

    #[test]
    fn intersects_symmetric() {
        let a = Interval::new(0.0, 0.3);
        let b = Interval::new(0.3, 0.6);
        let c = Interval::new(0.4, 0.6);
        assert!(a.intersects(&b) && b.intersects(&a));
        assert!(!a.intersects(&c) && !c.intersects(&a));
    }

    #[test]
    fn empty_accumulator_expand() {
        let mut acc = Interval::empty();
        assert!(acc.is_empty());
        acc.expand(0.4);
        assert_eq!(acc, Interval::point(0.4));
        acc.expand(0.1);
        acc.expand(0.9);
        assert_eq!(acc, Interval::new(0.1, 0.9));
    }

    #[test]
    fn expand_interval_ignores_empty() {
        let mut acc = Interval::new(0.2, 0.3);
        acc.expand_interval(&Interval::empty());
        assert_eq!(acc, Interval::new(0.2, 0.3));
        acc.expand_interval(&Interval::new(0.0, 0.1));
        assert_eq!(acc, Interval::new(0.0, 0.3));
    }

    #[test]
    fn min_gap_matches_lemma_4_2_cases() {
        // lb_X > ub_Y  → lb_X − ub_Y
        let x = Interval::new(0.7, 0.9);
        let y = Interval::new(0.1, 0.2);
        assert!((x.min_gap(&y) - 0.5).abs() < 1e-12);
        // lb_Y > ub_X → symmetric
        assert!((y.min_gap(&x) - 0.5).abs() < 1e-12);
        // overlapping → 0
        let z = Interval::new(0.15, 0.8);
        assert_eq!(x.min_gap(&z), 0.0);
    }

    #[test]
    fn min_dist_to_point() {
        let i = Interval::new(0.3, 0.6);
        assert!((i.min_dist_to(0.1) - 0.2).abs() < 1e-12);
        assert!((i.min_dist_to(0.9) - 0.3).abs() < 1e-12);
        assert_eq!(i.min_dist_to(0.45), 0.0);
    }

    #[test]
    fn missing_sentinel() {
        assert!(Interval::missing().is_missing());
        assert!(!Interval::unit().is_missing());
    }

    #[test]
    fn width_of_empty_is_zero() {
        assert_eq!(Interval::empty().width(), 0.0);
        assert!((Interval::new(0.25, 0.75).width() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contains_interval_cases() {
        let outer = Interval::new(0.0, 1.0);
        assert!(outer.contains_interval(&Interval::new(0.2, 0.8)));
        assert!(outer.contains_interval(&outer));
        assert!(!Interval::new(0.2, 0.8).contains_interval(&outer));
        assert!(!outer.contains_interval(&Interval::empty()));
    }
}
