//! Imputation engines (§3 of the paper, plus the baseline imputers of §6).
//!
//! The paper's approach imputes a missing `r[A_j]` from CDD rules and a
//! complete repository `R` (Equations 3–4); the experimental section
//! compares against DD-rule, editing-rule, and constraint-based imputation.
//! All engines produce a [`ProbTuple`] — the imputed probabilistic tuple of
//! Definition 4.
//!
//! * [`RuleImputer`] — rule-driven imputation shared by CDD, DD, and
//!   editing rules. It can retrieve matching samples either through the
//!   CDD-index + DR-index pair (the paper's `I_j ⋈ I_R` side of the index
//!   join) or by linear scans (the `CDD+ER` / `DD+ER` / `er+ER` baselines);
//! * [`ConstraintImputer`] — the `con+ER` baseline (reference \[43\]):
//!   imputes from the most similar complete tuples in the *current window*
//!   without touching `R`;
//! * [`Imputer`] — the common interface used by the engine and baselines.

pub mod constraint;
pub mod rule_imputer;

pub use constraint::ConstraintImputer;
pub use rule_imputer::{RuleImputer, RuleRetrieval};

use ter_repo::Record;
use ter_stream::ProbTuple;

/// Extra context available at imputation time. The constraint-based
/// baseline imputes from the sliding window's complete tuples; rule-based
/// imputers ignore it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImputeContext<'a> {
    /// Complete (or previously imputed most-likely) tuples currently in
    /// the window.
    pub window: &'a [Record],
}

/// Common imputation interface.
pub trait Imputer {
    /// Display name (matches the paper's method labels).
    fn name(&self) -> &'static str;

    /// Imputes every missing attribute of `record`, returning the
    /// probabilistic tuple. Complete records pass through unchanged.
    fn impute(&self, record: &Record, ctx: &ImputeContext<'_>) -> ProbTuple;
}

/// Shared tunables.
#[derive(Debug, Clone, Copy)]
pub struct ImputeConfig {
    /// Keep at most this many candidate values per missing attribute
    /// (top-k by probability, renormalized). Bounds the instance product;
    /// see DESIGN.md §3.
    pub max_candidates_per_attr: usize,
}

impl Default for ImputeConfig {
    fn default() -> Self {
        Self {
            max_candidates_per_attr: 8,
        }
    }
}
