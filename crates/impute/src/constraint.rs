//! The constraint-based imputation baseline (`con+ER`, reference \[43\]).
//!
//! Instead of consulting a repository, this method imputes a missing
//! attribute from the most similar tuples *inside the current sliding
//! window*: tuples whose non-missing attributes are close to the
//! incomplete tuple's donate their values. The paper finds it fast (no
//! repository access, Figures 16–17 flat in `η`) but least accurate
//! (Figure 5(a)) because window neighbours carry weaker semantic
//! association than rule-matched repository samples.

use ter_repo::Record;
use ter_stream::{AttrCandidates, ProbTuple};

use crate::{ImputeConfig, ImputeContext, Imputer};

/// Window-neighbour imputer. See the [module docs](self).
pub struct ConstraintImputer {
    /// Use the `k` most similar window tuples as donors.
    pub donors: usize,
    /// Shared config (candidate cap).
    pub cfg: ImputeConfig,
}

impl ConstraintImputer {
    /// Creates the baseline with `donors` nearest neighbours.
    pub fn new(donors: usize, cfg: ImputeConfig) -> Self {
        Self {
            donors: donors.max(1),
            cfg,
        }
    }

    /// Similarity on the attributes present in *both* records, normalized
    /// by the number of compared attributes (so donors missing different
    /// attributes are comparable).
    fn partial_similarity(a: &Record, b: &Record) -> f64 {
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for (va, vb) in a.attrs.iter().zip(&b.attrs) {
            if let (Some(va), Some(vb)) = (va, vb) {
                sum += va.jaccard(vb);
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum / cnt as f64
        }
    }
}

impl Imputer for ConstraintImputer {
    fn name(&self) -> &'static str {
        "con+ER"
    }

    fn impute(&self, record: &Record, ctx: &ImputeContext<'_>) -> ProbTuple {
        if record.is_complete() {
            return ProbTuple::certain(record.clone());
        }
        // Reference [43] is a *sequential* cleaner: values come from the
        // most recent stream elements (subject to the similarity
        // constraint), not from a global nearest-neighbour search — which
        // is exactly why the paper finds this baseline fast but least
        // accurate (weak semantic association).
        let imputed = record
            .missing_attrs()
            .into_iter()
            .map(|j| {
                let mut cands = Vec::new();
                for donor in ctx.window.iter().rev() {
                    if donor.id == record.id {
                        continue;
                    }
                    if let Some(v) = donor.attr(j) {
                        // Donors must satisfy the (weak) consistency
                        // constraint of sharing *some* token with the
                        // incomplete tuple; candidates are equally likely
                        // (a sequential cleaner has no semantic ranking).
                        if Self::partial_similarity(record, donor) > 0.0 {
                            cands.push((v.clone(), 1.0));
                        }
                        if cands.len() >= self.donors {
                            break;
                        }
                    }
                }
                let mut ac = AttrCandidates::normalized(j, cands);
                ac.truncate_top_k(self.cfg.max_candidates_per_attr);
                ac
            })
            .collect();
        ProbTuple::new(record.clone(), imputed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::Schema;
    use ter_text::Dictionary;

    fn schema() -> Schema {
        Schema::new(vec!["title", "genre", "studio"])
    }

    fn rec(
        d: &mut Dictionary,
        id: u64,
        t: Option<&str>,
        g: Option<&str>,
        s: Option<&str>,
    ) -> Record {
        Record::from_texts(&schema(), id, &[t, g, s], d)
    }

    #[test]
    fn imputes_from_nearest_window_tuple() {
        let mut d = Dictionary::new();
        let window = vec![
            rec(
                &mut d,
                1,
                Some("cowboy space drama"),
                Some("scifi"),
                Some("sunrise"),
            ),
            rec(
                &mut d,
                2,
                Some("cooking romance"),
                Some("slice of life"),
                Some("ghibli"),
            ),
        ];
        let incomplete = rec(&mut d, 3, Some("cowboy space drama"), Some("scifi"), None);
        let imputer = ConstraintImputer::new(2, ImputeConfig::default());
        let pt = imputer.impute(&incomplete, &ImputeContext { window: &window });
        let best = &pt.imputed[0].candidates[0].0;
        let sunrise = d.lookup("sunrise").unwrap();
        assert!(best.contains(sunrise));
    }

    #[test]
    fn empty_window_stays_missing() {
        let mut d = Dictionary::new();
        let incomplete = rec(&mut d, 1, Some("x"), None, None);
        let imputer = ConstraintImputer::new(3, ImputeConfig::default());
        let pt = imputer.impute(&incomplete, &ImputeContext { window: &[] });
        assert_eq!(pt.imputed.len(), 2);
        for c in &pt.imputed {
            assert!(c.candidates[0].0.is_empty());
        }
    }

    #[test]
    fn does_not_donate_from_itself() {
        let mut d = Dictionary::new();
        let incomplete = rec(&mut d, 7, Some("alpha"), None, None);
        let window = vec![incomplete.clone()];
        let imputer = ConstraintImputer::new(3, ImputeConfig::default());
        let pt = imputer.impute(&incomplete, &ImputeContext { window: &window });
        assert!(pt.imputed[0].candidates[0].0.is_empty());
    }

    #[test]
    fn donor_cap_respected() {
        let mut d = Dictionary::new();
        let window: Vec<Record> = (0..10)
            .map(|i| {
                rec(
                    &mut d,
                    i,
                    Some("shared words here"),
                    Some(&format!("genre{i}")),
                    Some("studio"),
                )
            })
            .collect();
        let incomplete = rec(&mut d, 99, Some("shared words here"), None, Some("studio"));
        let imputer = ConstraintImputer::new(3, ImputeConfig::default());
        let pt = imputer.impute(&incomplete, &ImputeContext { window: &window });
        assert!(pt.imputed[0].candidates.len() <= 3);
    }

    #[test]
    fn incomplete_donors_skip_missing_attrs() {
        let mut d = Dictionary::new();
        let window = vec![
            rec(&mut d, 1, Some("movie one"), Some("action"), None), // can't donate studio
            rec(&mut d, 2, Some("movie one"), Some("drama"), Some("toei")),
        ];
        let incomplete = rec(&mut d, 3, Some("movie one"), Some("action"), None);
        let imputer = ConstraintImputer::new(2, ImputeConfig::default());
        let pt = imputer.impute(&incomplete, &ImputeContext { window: &window });
        let toei = d.lookup("toei").unwrap();
        assert!(pt.imputed[0]
            .candidates
            .iter()
            .any(|(v, _)| v.contains(toei)));
    }

    #[test]
    fn complete_record_untouched() {
        let mut d = Dictionary::new();
        let r = rec(&mut d, 1, Some("a"), Some("b"), Some("c"));
        let imputer = ConstraintImputer::new(2, ImputeConfig::default());
        let pt = imputer.impute(&r, &ImputeContext::default());
        assert!(pt.is_certain());
    }
}
