//! Rule-driven imputation (Equations 3 and 4).
//!
//! For each missing attribute `A_j` of an incomplete tuple `r`:
//!
//! 1. **Rule selection** — find the applicable rules `X → A_j` (all
//!    determinants present in `r`, constants matching). Indexed retrieval
//!    uses the CDD-index `I_j`; linear retrieval scans the rule list.
//! 2. **Sample retrieval** — for each rule, find repository samples `s`
//!    satisfying the determinant constraints w.r.t. `r`. Indexed retrieval
//!    derives main-pivot distance bounds per constraint (triangle
//!    inequality for intervals, exact coordinates for constants) and
//!    range-queries the DR-index `I_R`; linear retrieval scans `R`.
//! 3. **Candidate collection** — every matching `(rule, sample)` pair votes
//!    for the domain values `val ∈ dom(A_j)` with
//!    `dist(s[A_j], val) ∈ A_j.I`; frequencies are combined across rules
//!    and normalized into existence probabilities (Equation 4).
//!
//! The two retrieval modes return identical candidates (property-tested),
//! which is why the paper reports identical F-scores for `TER-iDS`,
//! `I_j+G_ER`, and `CDD+ER` — they differ only in wall-clock time.

use ter_repo::{DrIndex, PivotTable, Record, Repository};
use ter_rules::{Cdd, CddIndex, Constraint};
use ter_stream::{AttrCandidates, ProbTuple};
use ter_text::Interval;

use crate::{ImputeConfig, ImputeContext, Imputer};

/// How rules and samples are retrieved.
pub enum RuleRetrieval<'a> {
    /// Linear scans over the rule list and the repository
    /// (the `CDD+ER` / `DD+ER` / `er+ER` baselines).
    Linear,
    /// CDD-indexes (one per attribute) joined with the DR-index
    /// (the paper's approach and the `I_j+G_ER` baseline).
    Indexed {
        /// `cdd_indexes[j]` serves dependent attribute `j`.
        cdd_indexes: &'a [CddIndex],
        /// The DR-index over the repository.
        dr_index: &'a DrIndex,
    },
}

/// Rule-driven imputer over a repository. See the [module docs](self).
pub struct RuleImputer<'a> {
    name: &'static str,
    repo: &'a Repository,
    pivots: &'a PivotTable,
    rules: &'a [Cdd],
    retrieval: RuleRetrieval<'a>,
    cfg: ImputeConfig,
    /// Pre-converted main-pivot coordinates of every domain value, per
    /// attribute — lets candidate collection skip domain values by the
    /// triangle inequality without recomputing distances.
    domain_coords: Vec<Vec<f64>>,
}

impl<'a> RuleImputer<'a> {
    /// Builds an imputer.
    pub fn new(
        name: &'static str,
        repo: &'a Repository,
        pivots: &'a PivotTable,
        rules: &'a [Cdd],
        retrieval: RuleRetrieval<'a>,
        cfg: ImputeConfig,
    ) -> Self {
        let d = repo.schema().arity();
        let domain_coords = (0..d)
            .map(|j| {
                repo.domain(j)
                    .values()
                    .iter()
                    .map(|v| pivots.convert_value(j, v))
                    .collect()
            })
            .collect();
        Self {
            name,
            repo,
            pivots,
            rules,
            retrieval,
            cfg,
            domain_coords,
        }
    }

    /// Phase 1: the applicable rules for each missing attribute of
    /// `record` (timed separately by the engine for the Figure 6 break-up).
    pub fn select_rules(&self, record: &Record) -> Vec<(usize, Vec<&'a Cdd>)> {
        record
            .missing_attrs()
            .into_iter()
            .map(|j| {
                let rules = match &self.retrieval {
                    RuleRetrieval::Linear => self
                        .rules
                        .iter()
                        .filter(|r| r.dependent == j && r.applicable_to(record))
                        .collect(),
                    RuleRetrieval::Indexed { cdd_indexes, .. } => {
                        cdd_indexes[j].applicable_rules(record, self.pivots)
                    }
                };
                (j, rules)
            })
            .collect()
    }

    /// Phase 2: candidate collection given the selected rules.
    pub fn impute_with_rules(
        &self,
        record: &Record,
        selected: &[(usize, Vec<&'a Cdd>)],
    ) -> ProbTuple {
        let imputed = selected
            .iter()
            .map(|(j, rules)| {
                let mut cand = self.collect_candidates(record, *j, rules);
                cand.truncate_top_k(self.cfg.max_candidates_per_attr);
                cand
            })
            .collect();
        ProbTuple::new(record.clone(), imputed)
    }

    /// Samples matching `rule` w.r.t. `record` (positions into `R`).
    fn matching_samples(&self, record: &Record, rule: &Cdd) -> Vec<usize> {
        match &self.retrieval {
            RuleRetrieval::Linear => (0..self.repo.len())
                .filter(|&i| rule.sample_matches(record, self.repo.sample(i)))
                .collect(),
            RuleRetrieval::Indexed { dr_index, .. } => {
                let d = self.repo.schema().arity();
                let mut bounds: Vec<Option<Interval>> = vec![None; d];
                for (a, c) in rule.determinants() {
                    let rv = record.attr(*a).expect("determinant present");
                    let r_coord = self.pivots.convert_value(*a, rv);
                    bounds[*a] = Some(match c {
                        // Triangle inequality: dist(s, piv) ∈
                        // [dist(r,piv) − ε.max, dist(r,piv) + ε.max].
                        Constraint::Interval(i) => {
                            Interval::new((r_coord - i.hi).max(0.0), (r_coord + i.hi).min(1.0))
                        }
                        // Constant v: s[A_x] = v ⇒ identical coordinate.
                        Constraint::Constant(v) => {
                            Interval::point(self.pivots.convert_value(*a, v))
                        }
                    });
                }
                dr_index
                    .candidate_samples(&bounds)
                    .into_iter()
                    .filter(|&i| rule.sample_matches(record, self.repo.sample(i)))
                    .collect()
            }
        }
    }

    /// Equation 3/4: frequency-vote domain values across all rules/samples.
    fn collect_candidates(
        &self,
        record: &Record,
        attr: usize,
        rules: &[&'a Cdd],
    ) -> AttrCandidates {
        let domain = self.repo.domain(attr);
        let mut freq = vec![0u32; domain.len()];
        for rule in rules {
            let iv = rule.dependent_interval;
            for sample_pos in self.matching_samples(record, rule) {
                let s_val_id = self.repo.value_id(sample_pos, attr);
                let s_coord = self.domain_coords[attr][s_val_id as usize];
                let s_val = domain.value(s_val_id);
                for (vid, coord) in self.domain_coords[attr].iter().enumerate() {
                    // Triangle filter: |d(val,piv) − d(s,piv)| ≤ d(val,s);
                    // if even the lower bound exceeds ε.max, skip.
                    if (coord - s_coord).abs() > iv.hi {
                        continue;
                    }
                    let dist = if vid as u32 == s_val_id {
                        0.0
                    } else {
                        s_val.jaccard_distance(domain.value(vid as u32))
                    };
                    if iv.contains(dist) {
                        freq[vid] += 1;
                    }
                }
            }
        }
        let candidates = freq
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(vid, &f)| (domain.value(vid as u32).clone(), f as f64))
            .collect();
        AttrCandidates::normalized(attr, candidates)
    }
}

impl Imputer for RuleImputer<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn impute(&self, record: &Record, _ctx: &ImputeContext<'_>) -> ProbTuple {
        if record.is_complete() {
            return ProbTuple::certain(record.clone());
        }
        let selected = self.select_rules(record);
        self.impute_with_rules(record, &selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::{PivotConfig, Schema};
    use ter_rules::{detect_cdds, DiscoveryConfig};
    use ter_text::{Dictionary, KeywordSet};

    /// Repository in which gender+symptom determine diagnosis tightly.
    fn setup() -> (Repository, PivotTable, Dictionary) {
        let schema = Schema::new(vec!["gender", "symptom", "diagnosis"]);
        let mut dict = Dictionary::new();
        let rows = [
            ("male", "weight loss blurred vision", "type two diabetes"),
            ("male", "weight loss thirst", "type two diabetes"),
            ("male", "blurred vision thirst", "type one diabetes"),
            ("male", "weight loss fatigue", "type two diabetes"),
            ("female", "fever cough aches", "seasonal flu"),
            ("female", "fever sore throat", "seasonal flu"),
            ("female", "cough aches chills", "seasonal influenza flu"),
            ("female", "fever chills", "seasonal flu"),
        ];
        let recs = rows
            .iter()
            .enumerate()
            .map(|(i, (g, s, dx))| {
                Record::from_texts(&schema, i as u64, &[Some(g), Some(s), Some(dx)], &mut dict)
            })
            .collect();
        let repo = Repository::from_records(schema, recs);
        let pivots = PivotTable::select(&repo, &PivotConfig::default());
        (repo, pivots, dict)
    }

    fn incomplete(dict: &mut Dictionary) -> Record {
        let schema = Schema::new(vec!["gender", "symptom", "diagnosis"]);
        Record::from_texts(
            &schema,
            100,
            &[Some("male"), Some("weight loss blurred vision"), None],
            dict,
        )
    }

    #[test]
    fn linear_imputation_suggests_diabetes() {
        let (repo, pivots, mut dict) = setup();
        let rules = detect_cdds(&repo, &DiscoveryConfig::default());
        assert!(!rules.is_empty());
        let imputer = RuleImputer::new(
            "CDD",
            &repo,
            &pivots,
            &rules,
            RuleRetrieval::Linear,
            ImputeConfig::default(),
        );
        let r = incomplete(&mut dict);
        let pt = imputer.impute(&r, &ImputeContext::default());
        assert_eq!(pt.imputed.len(), 1);
        // The most probable candidate should be diabetes-flavoured.
        let best = pt.imputed[0]
            .candidates
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let diabetes = dict.lookup("diabetes").unwrap();
        assert!(
            best.0.contains(diabetes),
            "best candidate lacks 'diabetes': {best:?}"
        );
    }

    #[test]
    fn indexed_equals_linear() {
        let (repo, pivots, mut dict) = setup();
        let rules = detect_cdds(&repo, &DiscoveryConfig::default());
        let d = repo.schema().arity();
        let cdd_indexes: Vec<CddIndex> = (0..d)
            .map(|j| CddIndex::build(j, &rules, &pivots))
            .collect();
        let dr = DrIndex::build(&repo, &pivots, &KeywordSet::universe(), 8);

        let linear = RuleImputer::new(
            "CDD",
            &repo,
            &pivots,
            &rules,
            RuleRetrieval::Linear,
            ImputeConfig::default(),
        );
        let indexed = RuleImputer::new(
            "TER-iDS",
            &repo,
            &pivots,
            &rules,
            RuleRetrieval::Indexed {
                cdd_indexes: &cdd_indexes,
                dr_index: &dr,
            },
            ImputeConfig::default(),
        );

        let cases = [
            incomplete(&mut dict),
            Record::from_texts(
                &Schema::new(vec!["gender", "symptom", "diagnosis"]),
                101,
                &[Some("female"), None, Some("seasonal flu")],
                &mut dict,
            ),
            Record::from_texts(
                &Schema::new(vec!["gender", "symptom", "diagnosis"]),
                102,
                &[Some("female"), None, None],
                &mut dict,
            ),
        ];
        for r in &cases {
            let a = linear.impute(r, &ImputeContext::default());
            let b = indexed.impute(r, &ImputeContext::default());
            assert_eq!(a.imputed.len(), b.imputed.len(), "record {}", r.id);
            for (ca, cb) in a.imputed.iter().zip(&b.imputed) {
                let mut va: Vec<_> = ca
                    .candidates
                    .iter()
                    .map(|(v, p)| (format!("{v:?}"), (p * 1e9).round() as i64))
                    .collect();
                let mut vb: Vec<_> = cb
                    .candidates
                    .iter()
                    .map(|(v, p)| (format!("{v:?}"), (p * 1e9).round() as i64))
                    .collect();
                va.sort();
                vb.sort();
                assert_eq!(va, vb, "record {} attr {}", r.id, ca.attr);
            }
        }
    }

    #[test]
    fn complete_record_passes_through() {
        let (repo, pivots, mut dict) = setup();
        let rules = detect_cdds(&repo, &DiscoveryConfig::default());
        let imputer = RuleImputer::new(
            "CDD",
            &repo,
            &pivots,
            &rules,
            RuleRetrieval::Linear,
            ImputeConfig::default(),
        );
        let schema = Schema::new(vec!["gender", "symptom", "diagnosis"]);
        let r = Record::from_texts(
            &schema,
            1,
            &[Some("male"), Some("thirst"), Some("diabetes")],
            &mut dict,
        );
        let pt = imputer.impute(&r, &ImputeContext::default());
        assert!(pt.is_certain());
        assert_eq!(pt.instance_count(), 1);
    }

    #[test]
    fn no_applicable_rule_stays_missing() {
        let (repo, pivots, mut dict) = setup();
        // No rules at all.
        let imputer = RuleImputer::new(
            "CDD",
            &repo,
            &pivots,
            &[],
            RuleRetrieval::Linear,
            ImputeConfig::default(),
        );
        let r = incomplete(&mut dict);
        let pt = imputer.impute(&r, &ImputeContext::default());
        assert_eq!(pt.imputed.len(), 1);
        assert_eq!(pt.imputed[0].candidates.len(), 1);
        assert!(pt.imputed[0].candidates[0].0.is_empty());
    }

    #[test]
    fn candidate_cap_is_respected() {
        let (repo, pivots, mut dict) = setup();
        let rules = detect_cdds(&repo, &DiscoveryConfig::default());
        let cfg = ImputeConfig {
            max_candidates_per_attr: 2,
        };
        let imputer = RuleImputer::new("CDD", &repo, &pivots, &rules, RuleRetrieval::Linear, cfg);
        let r = incomplete(&mut dict);
        let pt = imputer.impute(&r, &ImputeContext::default());
        assert!(pt.imputed[0].candidates.len() <= 2);
        let sum: f64 = pt.imputed[0].candidates.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_missing_attributes() {
        let (repo, pivots, mut dict) = setup();
        let rules = detect_cdds(&repo, &DiscoveryConfig::default());
        let imputer = RuleImputer::new(
            "CDD",
            &repo,
            &pivots,
            &rules,
            RuleRetrieval::Linear,
            ImputeConfig::default(),
        );
        let schema = Schema::new(vec!["gender", "symptom", "diagnosis"]);
        let r = Record::from_texts(&schema, 103, &[Some("female"), None, None], &mut dict);
        let pt = imputer.impute(&r, &ImputeContext::default());
        assert_eq!(pt.imputed.len(), 2);
        assert!(pt.instance_count() >= 1);
        let total: f64 = pt.instances().map(|i| i.prob).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
