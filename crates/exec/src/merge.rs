//! Deterministic merges of per-shard / per-worker step results.
//!
//! Workers race; merges must not. Every function here maps the *contents*
//! of the per-worker partial results to one canonical value — the output
//! never depends on which worker finished first or how the work was
//! partitioned, which is what makes the batch-parallel engine's output a
//! deterministic function of the arrival order alone (property-tested in
//! `proptests.rs`).

use ter_text::fxhash::FxHashSet;

/// Union of per-shard surfaced candidate ids. A region spanning cells in
/// several shards surfaces once per shard; the union deduplicates exactly
/// like the sequential engine's surfaced set.
pub fn merge_surfaced(per_shard: &[Vec<u64>]) -> FxHashSet<u64> {
    let mut out = FxHashSet::default();
    for part in per_shard {
        out.extend(part.iter().copied());
    }
    out
}

/// One worker's pair-decision tallies over its candidate slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefineOutcome {
    /// Pairs pruned by Theorem 4.2 (similarity upper bound).
    pub sim: u64,
    /// Pairs pruned by Theorem 4.3 (probability upper bound).
    pub prob: u64,
    /// Pairs rejected at the instance-pair level (Theorem 4.4).
    pub instance: u64,
    /// Matching pairs, already `(min, max)`-normalized.
    pub matches: Vec<(u64, u64)>,
}

impl RefineOutcome {
    /// Folds another worker's tallies into this one.
    pub fn absorb(&mut self, other: RefineOutcome) {
        self.sim += other.sim;
        self.prob += other.prob;
        self.instance += other.instance;
        self.matches.extend(other.matches);
    }
}

/// Merges per-worker outcomes into one arrival-level outcome. Counters
/// are summed; matches are sorted by normalized pair, so the merged match
/// order is a deterministic function of the match *set* — independent of
/// worker count, slice boundaries, and completion order.
pub fn merge_outcomes(parts: impl IntoIterator<Item = RefineOutcome>) -> RefineOutcome {
    let mut out = RefineOutcome::default();
    for p in parts {
        out.absorb(p);
    }
    out.matches.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surfaced_union_deduplicates() {
        let merged = merge_surfaced(&[vec![1, 2, 3], vec![3, 4], vec![], vec![2]]);
        let mut ids: Vec<u64> = merged.into_iter().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn outcome_merge_sums_and_sorts() {
        let a = RefineOutcome {
            sim: 2,
            prob: 1,
            instance: 0,
            matches: vec![(5, 9), (1, 2)],
        };
        let b = RefineOutcome {
            sim: 1,
            prob: 0,
            instance: 3,
            matches: vec![(3, 4)],
        };
        let m = merge_outcomes([a.clone(), b.clone()]);
        assert_eq!((m.sim, m.prob, m.instance), (3, 1, 3));
        assert_eq!(m.matches, vec![(1, 2), (3, 4), (5, 9)]);
        // Partition order must not matter.
        assert_eq!(m, merge_outcomes([b, a]));
    }

    #[test]
    fn empty_merge_is_default() {
        assert_eq!(merge_outcomes([]), RefineOutcome::default());
    }
}
