//! Sharded, batch-parallel, stage-pipelined execution layer for TER-iDS.
//!
//! The sequential [`ter_ids::TerIdsEngine`] processes one arrival at a
//! time on one core. This crate scales that pipeline out without changing
//! a single reported pair or statistic:
//!
//! * [`ShardRouter`] hash-partitions the ER-grid's cells into `S` shards;
//! * [`stages`] names the per-arrival pipeline — **impute → traverse →
//!   refine → merge** — as pure stage kernels;
//! * [`pool`] keeps a persistent worker pool alive across batches
//!   (spawn once per [`ShardedTerIdsEngine::with_pool`] session, not per
//!   batch), each worker owning its shard group for a batch and its
//!   imputer for the session;
//! * [`engine`] drives the stages: the lock-step drive pays two barriers
//!   per arrival, the overlapped drive ([`ExecConfig::overlap`])
//!   pipelines arrival `i`'s refine with arrival `i+1`'s traverse and
//!   pays one — instrumented in [`ter_ids::StageMetrics`];
//! * [`merge`] deterministically folds the per-shard partial results back
//!   together (stable `(arrival_seq, norm_pair)` ordering), with expiry
//!   and result-set maintenance in the sequential merge phase so window
//!   semantics are unchanged.
//!
//! The contract — output **bit-identical** to the sequential engine for
//! every shard count, thread count, batch size, and drive mode — is
//! enforced by the differential suite in `tests/parallel_parity.rs` and
//! the property tests in `proptests.rs`.

pub mod engine;
pub mod merge;
pub(crate) mod pool;
pub mod router;
pub(crate) mod stages;

#[cfg(test)]
mod proptests;

pub use engine::{ExecConfig, PooledEngine, ShardedTerIdsEngine};
pub use merge::{merge_outcomes, merge_surfaced, RefineOutcome};
pub use router::ShardRouter;
