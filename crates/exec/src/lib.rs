//! Sharded, batch-parallel execution layer for TER-iDS.
//!
//! The sequential [`ter_ids::TerIdsEngine`] processes one arrival at a
//! time on one core. This crate scales that pipeline out without changing
//! a single reported pair or statistic:
//!
//! * [`ShardRouter`] hash-partitions the ER-grid's cells into `S` shards;
//! * [`ShardedTerIdsEngine`] accepts arrival batches
//!   ([`ter_ids::ErProcessor::step_batch`]), imputes them in parallel,
//!   fans candidate retrieval and Theorem 4.1–4.4 pruning/refinement out
//!   to a `std::thread` worker pool, and
//! * [`merge`] deterministically folds the per-shard partial results back
//!   together (stable `(arrival_seq, norm_pair)` ordering), with expiry
//!   and result-set maintenance in the sequential merge phase so window
//!   semantics are unchanged.
//!
//! The contract — output **bit-identical** to the sequential engine for
//! every shard count, thread count, and batch size — is enforced by the
//! differential suite in `tests/parallel_parity.rs` and the property
//! tests in `proptests.rs`.

pub mod engine;
pub mod merge;
pub mod router;

#[cfg(test)]
mod proptests;

pub use engine::{ExecConfig, ShardedTerIdsEngine};
pub use merge::{merge_outcomes, merge_surfaced, RefineOutcome};
pub use router::ShardRouter;
