//! The persistent ER worker pool.
//!
//! PR 2 spawned a fresh set of `std::thread` workers for every batch —
//! correct, but the spawn/join cost and the cold per-batch channels sat
//! on the ingest hot path. This module keeps the workers alive for a
//! whole *session* ([`ShardedTerIdsEngine::with_pool`](crate::engine::ShardedTerIdsEngine::with_pool)):
//! threads spawn once, own their CDD-indexed imputer for the session, and
//! receive work over long-lived channels. Between batches the shard
//! groups travel back to the engine (two pointer-sized channel messages
//! per worker instead of a spawn + join), so `export_state` and
//! checkpointing keep working mid-session.
//!
//! The request protocol mirrors the stage decomposition in
//! [`stages`](crate::stages):
//!
//! | request            | stage    | response            |
//! |--------------------|----------|---------------------|
//! | [`Req::Impute`]    | impute   | [`Resp::Imputed`]   |
//! | [`Req::Begin`]     | —        | none (hand-off)     |
//! | [`Req::Step`]      | traverse | [`Resp::Surfaced`]  |
//! | [`Req::Refine`]    | refine   | [`Resp::Refined`]   |
//! | [`Req::End`]       | —        | [`Resp::Shards`]    |
//!
//! Workers answer requests strictly in order on their own response
//! channel, so the driving thread can pipeline: after queueing
//! `Refine(i)` and `Step(i+1)` it knows the `Refined` reply precedes the
//! `Surfaced` reply on every worker it sent both to. That FIFO guarantee
//! is what the overlapped drive's single-barrier-per-arrival schedule
//! rests on.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use ter_ids::meta::TupleMeta;
use ter_ids::{PhaseTiming, TerContext};
use ter_impute::RuleImputer;
use ter_stream::Arrival;
use ter_text::fxhash::FxHashSet;

use crate::merge::{merge_outcomes, merge_surfaced, RefineOutcome};
use crate::stages::{
    apply_evict, apply_insert, impute_one, refine_slice, traverse_shards, ShardGrid, WorkerCtx,
};

/// One instruction to an ER worker.
pub(crate) enum Req {
    /// Impute a contiguous chunk of the batch (stage 1); `base` is the
    /// chunk's offset in the batch so the driver can reassemble outputs
    /// in arrival order.
    Impute { arrivals: Vec<Arrival>, base: usize },
    /// Start of batch: take ownership of a shard group for its duration.
    Begin { group: Vec<(usize, ShardGrid)> },
    /// Apply the previous arrival's grid insert and this arrival's expiry
    /// to the owned shards (in that order — exactly the monolithic grid's
    /// op sequence), then traverse them with cell-level pruning for
    /// `probe` and report the surfaced candidate ids.
    Step {
        insert: Option<Arc<TupleMeta>>,
        evict: Option<Arc<TupleMeta>>,
        probe: Arc<TupleMeta>,
    },
    /// Run the pair-decision cascade over a slice of examined candidates.
    Refine {
        probe: Arc<TupleMeta>,
        cands: Vec<Arc<TupleMeta>>,
    },
    /// End of batch: apply the final pending insert and hand the shard
    /// group back.
    End { insert: Option<Arc<TupleMeta>> },
}

/// A worker's answer to one [`Req`].
pub(crate) enum Resp {
    Imputed {
        base: usize,
        metas: Vec<(Arc<TupleMeta>, PhaseTiming)>,
    },
    Surfaced(Vec<u64>),
    Refined(RefineOutcome),
    Shards(Vec<(usize, ShardGrid)>),
}

/// An ER worker: lives for the pool session, owns its shard group
/// between `Begin` and `End`, applies grid mutations in arrival order,
/// and answers requests strictly in order. Exits when the request sender
/// is dropped.
pub(crate) fn worker_loop<'a>(
    wctx: WorkerCtx<'a>,
    ctx: &'a TerContext,
    imputer: &RuleImputer<'a>,
    req_rx: Receiver<Req>,
    resp_tx: Sender<Resp>,
) {
    let mut shards: Vec<(usize, ShardGrid)> = Vec::new();
    while let Ok(req) = req_rx.recv() {
        match req {
            Req::Impute { arrivals, base } => {
                let metas = arrivals
                    .iter()
                    .map(|a| impute_one(imputer, ctx, a))
                    .collect();
                let _ = resp_tx.send(Resp::Imputed { base, metas });
            }
            Req::Begin { group } => {
                debug_assert!(shards.is_empty(), "Begin with a batch still open");
                shards = group;
            }
            Req::Step {
                insert,
                evict,
                probe,
            } => {
                if let Some(meta) = insert {
                    apply_insert(&mut shards, wctx.router, &meta);
                }
                if let Some(meta) = evict {
                    apply_evict(&mut shards, &meta);
                }
                let mut surfaced: FxHashSet<u64> = FxHashSet::default();
                traverse_shards(&shards, &wctx, &probe, &mut surfaced);
                let _ = resp_tx.send(Resp::Surfaced(surfaced.into_iter().collect()));
            }
            Req::Refine { probe, cands } => {
                let _ = resp_tx.send(Resp::Refined(refine_slice(&wctx, &probe, &cands)));
            }
            Req::End { insert } => {
                if let Some(meta) = insert {
                    apply_insert(&mut shards, wctx.router, &meta);
                }
                let _ = resp_tx.send(Resp::Shards(std::mem::take(&mut shards)));
            }
        }
    }
}

/// The driving thread's handle on one worker.
pub(crate) struct PoolChan {
    pub req_tx: Sender<Req>,
    pub resp_rx: Receiver<Resp>,
}

pub(crate) fn pool_channels() -> (PoolChan, Receiver<Req>, Sender<Resp>) {
    let (req_tx, req_rx) = channel::<Req>();
    let (resp_tx, resp_rx) = channel::<Resp>();
    (PoolChan { req_tx, resp_rx }, req_rx, resp_tx)
}

/// The driving thread's view of a live worker pool: typed send/collect
/// helpers over the per-worker channel pairs. Dropping the pool drops
/// every request sender, which is the session-end signal the workers
/// exit on.
pub(crate) struct Pool {
    chans: Vec<PoolChan>,
}

impl Pool {
    pub fn new(chans: Vec<PoolChan>) -> Self {
        Self { chans }
    }

    /// Worker count `T`.
    pub fn len(&self) -> usize {
        self.chans.len()
    }

    fn send(&self, worker: usize, req: Req) {
        self.chans[worker]
            .req_tx
            .send(req)
            .expect("ER worker hung up");
    }

    fn recv(&self, worker: usize) -> Resp {
        self.chans[worker]
            .resp_rx
            .recv()
            .expect("ER worker hung up")
    }

    /// Sends one request to every worker.
    pub fn broadcast(&self, mut make: impl FnMut() -> Req) {
        for w in 0..self.len() {
            self.send(w, make());
        }
    }

    /// Imputes the batch across the pool (one contiguous chunk per
    /// worker) and reassembles per-arrival outputs in arrival order —
    /// equal to a sequential `impute_one` loop.
    pub fn impute_batch(&self, batch: &[Arrival]) -> Vec<(Arc<TupleMeta>, PhaseTiming)> {
        let chunk = batch.len().div_ceil(self.len());
        let mut sent = 0;
        for (w, slice) in batch.chunks(chunk).enumerate() {
            self.send(
                w,
                Req::Impute {
                    arrivals: slice.to_vec(),
                    base: w * chunk,
                },
            );
            sent += 1;
        }
        let mut out: Vec<Option<(Arc<TupleMeta>, PhaseTiming)>> = vec![None; batch.len()];
        for w in 0..sent {
            match self.recv(w) {
                Resp::Imputed { base, metas } => {
                    for (off, m) in metas.into_iter().enumerate() {
                        out[base + off] = Some(m);
                    }
                }
                _ => unreachable!("protocol violation: expected Imputed"),
            }
        }
        out.into_iter()
            .map(|m| m.expect("imputation hole"))
            .collect()
    }

    /// Hands each worker its shard group for the batch.
    pub fn begin(&self, groups: Vec<Vec<(usize, ShardGrid)>>) {
        debug_assert_eq!(groups.len(), self.len());
        for (w, group) in groups.into_iter().enumerate() {
            self.send(w, Req::Begin { group });
        }
    }

    /// Queues one arrival's traverse stage on every worker (no wait).
    pub fn send_step(
        &self,
        insert: Option<&Arc<TupleMeta>>,
        evict: Option<&Arc<TupleMeta>>,
        probe: &Arc<TupleMeta>,
    ) {
        self.broadcast(|| Req::Step {
            insert: insert.cloned(),
            evict: evict.cloned(),
            probe: Arc::clone(probe),
        });
    }

    /// Collects one `Surfaced` reply per worker and merges them — the
    /// union deduplicates exactly like the sequential engine's surfaced
    /// set.
    pub fn collect_surfaced(&self) -> FxHashSet<u64> {
        let mut parts = Vec::with_capacity(self.len());
        for w in 0..self.len() {
            match self.recv(w) {
                Resp::Surfaced(ids) => parts.push(ids),
                _ => unreachable!("protocol violation: expected Surfaced"),
            }
        }
        merge_surfaced(&parts)
    }

    /// Queues one arrival's refine stage, chunked across the pool in
    /// candidate order (deterministic partition — the merge sorts, so the
    /// partition never shows in the output). Returns how many workers
    /// received a slice; `0` when the candidate set is empty.
    pub fn send_refine(&self, probe: &Arc<TupleMeta>, cands: &[Arc<TupleMeta>]) -> usize {
        let per = cands.len().div_ceil(self.len()).max(1);
        let mut sent = 0;
        for (w, slice) in cands.chunks(per).enumerate() {
            self.send(
                w,
                Req::Refine {
                    probe: Arc::clone(probe),
                    cands: slice.to_vec(),
                },
            );
            sent += 1;
        }
        sent
    }

    /// Collects the `Refined` replies of the first `sent` workers and
    /// merges them deterministically.
    pub fn collect_refined(&self, sent: usize) -> RefineOutcome {
        merge_outcomes((0..sent).map(|w| match self.recv(w) {
            Resp::Refined(o) => o,
            _ => unreachable!("protocol violation: expected Refined"),
        }))
    }

    /// End of batch: apply the final pending insert, then take every
    /// shard group back, reassembled in shard order.
    pub fn finish(&self, insert: Option<Arc<TupleMeta>>, shard_count: usize) -> Vec<ShardGrid> {
        self.broadcast(|| Req::End {
            insert: insert.clone(),
        });
        let mut returned: Vec<(usize, ShardGrid)> = Vec::with_capacity(shard_count);
        for w in 0..self.len() {
            match self.recv(w) {
                Resp::Shards(group) => returned.extend(group),
                _ => unreachable!("protocol violation: expected Shards"),
            }
        }
        returned.sort_by_key(|(sid, _)| *sid);
        debug_assert_eq!(returned.len(), shard_count);
        returned.into_iter().map(|(_, g)| g).collect()
    }
}
