//! The named stages of the batch-parallel TER-iDS pipeline.
//!
//! Each arrival flows through four stages — **impute → traverse →
//! refine → merge** — and every function here is one stage's kernel,
//! pure with respect to the engine's dynamic state:
//!
//! * [`impute_one`] — rule selection, imputation, and [`TupleMeta`]
//!   derivation; a function of the static [`TerContext`] and the arriving
//!   record alone, which is what lets whole batches impute concurrently.
//! * [`apply_insert`] / [`apply_evict`] / [`traverse_shards`] — the
//!   traverse stage: grid maintenance in arrival order followed by
//!   cell-level pruning over a worker's shard group.
//! * [`refine_slice`] — the refine stage: the Theorem 4.1–4.4
//!   pair-decision cascade over a candidate slice.
//! * [`eviction_schedule`] — the merge stage's look-ahead: which tuple
//!   each arrival of a batch will expire, a pure function of the window
//!   contents and the arrival order. Knowing the schedule up front is
//!   what allows the overlapped drive to hand arrival `i+1`'s traverse to
//!   the workers while arrival `i` is still refining.
//!
//! The merge stage itself (window/expiry bookkeeping, statistics,
//! result-set maintenance) stays sequential on the driving thread — see
//! `ShardedTerIdsEngine::finalize_arrival` — so window semantics are
//! exactly the sequential engine's.

use std::sync::Arc;
use std::time::Instant;

use ter_ids::meta::TupleMeta;
use ter_ids::pruning::cell_survives;
use ter_ids::results::norm_pair;
use ter_ids::{decide_pair, ErAggregate, PairContext, PairDecision, PhaseTiming, TerContext};
use ter_impute::RuleImputer;
use ter_index::RegionGrid;
use ter_stream::{Arrival, ProbTuple, SlidingWindow};
use ter_text::fxhash::FxHashSet;

use crate::merge::RefineOutcome;
use crate::router::ShardRouter;

/// One shard of the partitioned ER-grid.
pub(crate) type ShardGrid = RegionGrid<u64, ErAggregate>;

/// Inputs shared by every ER worker for the duration of a pool session.
/// Borrows only from the static [`TerContext`] (never from the engine),
/// so a persistent pool can hold one for its whole lifetime while the
/// driving thread keeps mutating the engine's dynamic state.
#[derive(Clone, Copy)]
pub(crate) struct WorkerCtx<'a> {
    pub router: ShardRouter,
    pub pair: PairContext<'a>,
}

/// Phase-1 (impute) work for one arrival: imputation + metadata
/// derivation. A pure function of the static context and the arriving
/// record — mirrors the sequential engine's imputation block including
/// its phase timings.
pub(crate) fn impute_one(
    imputer: &RuleImputer<'_>,
    ctx: &TerContext,
    arrival: &Arrival,
) -> (Arc<TupleMeta>, PhaseTiming) {
    let mut timing = PhaseTiming {
        arrivals: 1,
        ..PhaseTiming::default()
    };
    let pt = if arrival.record.is_complete() {
        ProbTuple::certain(arrival.record.clone())
    } else {
        let t = Instant::now();
        let selected = imputer.select_rules(&arrival.record);
        timing.rule_selection += t.elapsed();
        let t = Instant::now();
        let pt = imputer.impute_with_rules(&arrival.record, &selected);
        timing.imputation += t.elapsed();
        pt
    };
    let meta = TupleMeta::build(
        arrival.record.id,
        arrival.stream_id,
        arrival.timestamp,
        pt,
        &ctx.pivots,
        &ctx.layout,
        &ctx.keywords,
    );
    (Arc::new(meta), timing)
}

/// Applies one tuple's grid insert to a worker's shard group: the
/// region's cells are enumerated and routed once, then each shard grid
/// receives exactly its owned subset.
pub(crate) fn apply_insert(
    shards: &mut [(usize, ShardGrid)],
    router: ShardRouter,
    meta: &TupleMeta,
) {
    let Some((_, first)) = shards.first() else {
        return;
    };
    let region = meta.region();
    // All shard grids share dimensions, so any of them enumerates the keys.
    let keys = first.cell_keys_of(&region);
    let owners: Vec<usize> = keys.iter().map(|k| router.shard_of(k)).collect();
    let agg = meta.aggregate();
    for (sid, grid) in shards.iter_mut() {
        let mut owned = keys
            .iter()
            .zip(&owners)
            .filter(|(_, owner)| **owner == *sid)
            .map(|(k, _)| k.clone())
            .peekable();
        if owned.peek().is_some() {
            grid.insert_at(owned, &region, meta.id, agg.clone());
        }
    }
}

/// Evicts one tuple from a worker's shard group. Cells the group does not
/// own are simply absent and no-op.
pub(crate) fn apply_evict(shards: &mut [(usize, ShardGrid)], meta: &TupleMeta) {
    for (_, grid) in shards.iter_mut() {
        grid.evict(&meta.region(), &meta.id);
    }
}

/// Traverses a worker's shard group with cell-level pruning for `probe`.
pub(crate) fn traverse_shards(
    shards: &[(usize, ShardGrid)],
    ctx: &WorkerCtx<'_>,
    probe: &TupleMeta,
    surfaced: &mut FxHashSet<u64>,
) {
    for (_, grid) in shards.iter() {
        grid.traverse(
            |_rect, agg| cell_survives(probe, agg, ctx.pair.gamma, ctx.pair.aux_counts),
            |entry| {
                surfaced.insert(entry.payload);
            },
        );
    }
}

/// Runs the pair-decision cascade over a candidate slice.
pub(crate) fn refine_slice(
    ctx: &WorkerCtx<'_>,
    probe: &TupleMeta,
    cands: &[Arc<TupleMeta>],
) -> RefineOutcome {
    let mut out = RefineOutcome::default();
    for other in cands {
        match decide_pair(probe, other, &ctx.pair) {
            PairDecision::SimPruned => out.sim += 1,
            PairDecision::ProbPruned => out.prob += 1,
            PairDecision::InstancePruned => out.instance += 1,
            PairDecision::Match => out.matches.push(norm_pair(probe.id, other.id)),
        }
    }
    out
}

/// The batch's eviction look-ahead: which tuple id (if any) each arrival
/// will expire when pushed. A pure function of the current window and the
/// arrival order — simulated on a clone, the real window is untouched.
/// The overlapped drive uses entry `i+1` to dispatch arrival `i+1`'s
/// grid maintenance before arrival `i` has merged; the merge loop then
/// asserts the real eviction agrees.
pub(crate) fn eviction_schedule(
    window: &SlidingWindow<u64>,
    batch: &[Arrival],
) -> Vec<Option<u64>> {
    let mut sim = window.clone();
    batch
        .iter()
        .map(|a| sim.push(a.timestamp, a.record.id).map(|(_, id)| id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_schedule_matches_real_pushes() {
        let mk = |id: u64, ts: u64| Arrival {
            stream_id: 0,
            timestamp: ts,
            record: ter_repo::Record::from_texts(
                &ter_repo::Schema::new(vec!["a"]),
                id,
                &[Some("x")],
                &mut ter_text::Dictionary::new(),
            ),
        };
        let mut window = SlidingWindow::new(2);
        window.push(0, 10);
        window.push(1, 11);
        let batch: Vec<Arrival> = (0..4).map(|i| mk(20 + i, 2 + i)).collect();
        let sched = eviction_schedule(&window, &batch);
        // Capacity 2, two residents: every push evicts; in-batch tuples
        // start expiring from the third arrival on.
        assert_eq!(sched, vec![Some(10), Some(11), Some(20), Some(21)]);
        // The schedule is a prediction: replaying the pushes for real
        // must agree, and the original window must be untouched.
        assert_eq!(window.len(), 2);
        for (a, expect) in batch.iter().zip(&sched) {
            let got = window.push(a.timestamp, a.record.id).map(|(_, id)| id);
            assert_eq!(got, *expect);
        }
    }
}
