//! The sharded, batch-parallel TER-iDS engine.
//!
//! [`ShardedTerIdsEngine`] processes arrivals in batches
//! ([`ter_ids::ErProcessor::step_batch`]) and produces output
//! **bit-identical** to the sequential [`ter_ids::TerIdsEngine`] for any
//! shard count, thread count, and batch size. The per-arrival pipeline is
//! decomposed into phases by what they may touch:
//!
//! 1. **Batch-parallel imputation** — rule selection, imputation, and
//!    [`TupleMeta`] derivation read only the static [`TerContext`], so the
//!    whole batch is imputed concurrently (contiguous chunks across
//!    workers) with per-arrival results equal to the sequential engine's.
//! 2. **Shard-parallel candidate retrieval** — the ER-grid is partitioned
//!    into `S` shards by cell-key hash ([`ShardRouter`]); each worker owns
//!    a disjoint shard group for the whole batch and traverses it with the
//!    shared cell-level predicate ([`ter_ids::pruning::cell_survives`]).
//!    Grid mutations (the previous arrival's insert, this arrival's
//!    expiry) are applied by the owning worker in arrival order, so every
//!    cell sees exactly the op sequence the monolithic grid would.
//! 3. **Candidate-parallel pruning & refinement** — the surfaced union is
//!    filtered and partitioned; each worker routes its slice through the
//!    shared cascade ([`ter_ids::decide_pair`]). Small candidate sets are
//!    refined on the driving thread instead — a synchronization barrier
//!    is not worth a handful of pairs.
//! 4. **Sequential merge** — window maintenance, expiry, result-set and
//!    statistics updates happen on the driving thread in arrival order
//!    (per-worker tallies merged deterministically, matches ordered by
//!    `(arrival_seq, norm_pair)`), so window semantics are unchanged.
//!
//! With `threads == 1` the same pipeline runs inline on the driving
//! thread — no pool, no channels — so the single-thread configuration is
//! a fair baseline rather than a message-passing straw man. Workers are
//! spawned once per batch (scoped threads, no external deps) and
//! coordinate over mpsc channels; at most two synchronization points per
//! arrival (traverse, refine).

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use ter_ids::candidates;
use ter_ids::meta::TupleMeta;
use ter_ids::pruning::cell_survives;
use ter_ids::results::norm_pair;
use ter_ids::{
    decide_pair, EngineState, ErAggregate, ErProcessor, PairContext, PairDecision, Params,
    PhaseTiming, PruneStats, PruningMode, ResultSet, StepOutput, TerContext,
};
use ter_impute::RuleImputer;
use ter_index::RegionGrid;
use ter_stream::{Arrival, ProbTuple, SlidingWindow};
use ter_text::fxhash::{FxHashMap, FxHashSet};

use crate::merge::{merge_outcomes, merge_surfaced, RefineOutcome};
use crate::router::ShardRouter;

/// One shard of the partitioned ER-grid.
type ShardGrid = RegionGrid<u64, ErAggregate>;

/// Candidate sets smaller than this are refined on the driving thread:
/// the per-arrival fan-out barrier costs more than deciding a few pairs.
/// Result-invariant — both paths run the same [`decide_pair`] cascade.
const REFINE_FANOUT_MIN: usize = 16;

/// Parallel execution knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Number of ER-grid shards `S` (cells are hash-partitioned across
    /// them). Result-invariant; more shards than threads lets the router
    /// balance cell load across workers.
    pub shards: usize,
    /// Worker threads `T` driving imputation, traversal, and refinement.
    /// Result-invariant; `1` runs the whole pipeline inline.
    pub threads: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self { shards: 8, threads }
    }
}

/// Inputs shared by every ER worker for the duration of one batch.
#[derive(Clone, Copy)]
struct WorkerCtx<'a> {
    router: ShardRouter,
    pair: PairContext<'a>,
}

/// One per-arrival instruction to an ER worker.
enum Req {
    /// Apply the previous arrival's grid insert and this arrival's expiry
    /// to the owned shards (in that order — exactly the monolithic grid's
    /// op sequence), then traverse them with cell-level pruning for
    /// `probe` and report the surfaced candidate ids.
    Step {
        insert: Option<Arc<TupleMeta>>,
        evict: Option<Arc<TupleMeta>>,
        probe: Arc<TupleMeta>,
    },
    /// Run the pair-decision cascade over a slice of examined candidates.
    Refine {
        probe: Arc<TupleMeta>,
        cands: Vec<Arc<TupleMeta>>,
    },
    /// End of batch: apply the final pending insert and return the shards.
    Finish { insert: Option<Arc<TupleMeta>> },
}

/// A worker's answer to one [`Req`].
enum Resp {
    Surfaced(Vec<u64>),
    Refined(RefineOutcome),
}

/// Applies one tuple's grid insert to a worker's shard group: the
/// region's cells are enumerated and routed once, then each shard grid
/// receives exactly its owned subset.
fn apply_insert(shards: &mut [(usize, ShardGrid)], router: ShardRouter, meta: &TupleMeta) {
    let Some((_, first)) = shards.first() else {
        return;
    };
    let region = meta.region();
    // All shard grids share dimensions, so any of them enumerates the keys.
    let keys = first.cell_keys_of(&region);
    let owners: Vec<usize> = keys.iter().map(|k| router.shard_of(k)).collect();
    let agg = meta.aggregate();
    for (sid, grid) in shards.iter_mut() {
        let mut owned = keys
            .iter()
            .zip(&owners)
            .filter(|(_, owner)| **owner == *sid)
            .map(|(k, _)| k.clone())
            .peekable();
        if owned.peek().is_some() {
            grid.insert_at(owned, &region, meta.id, agg.clone());
        }
    }
}

/// Evicts one tuple from a worker's shard group. Cells the group does not
/// own are simply absent and no-op.
fn apply_evict(shards: &mut [(usize, ShardGrid)], meta: &TupleMeta) {
    for (_, grid) in shards.iter_mut() {
        grid.evict(&meta.region(), &meta.id);
    }
}

/// Traverses a worker's shard group with cell-level pruning for `probe`.
fn traverse_shards(
    shards: &[(usize, ShardGrid)],
    ctx: &WorkerCtx<'_>,
    probe: &TupleMeta,
    surfaced: &mut FxHashSet<u64>,
) {
    for (_, grid) in shards.iter() {
        grid.traverse(
            |_rect, agg| cell_survives(probe, agg, ctx.pair.gamma, ctx.pair.aux_counts),
            |entry| {
                surfaced.insert(entry.payload);
            },
        );
    }
}

/// Runs the pair-decision cascade over a candidate slice.
fn refine_slice(ctx: &WorkerCtx<'_>, probe: &TupleMeta, cands: &[Arc<TupleMeta>]) -> RefineOutcome {
    let mut out = RefineOutcome::default();
    for other in cands {
        match decide_pair(probe, other, &ctx.pair) {
            PairDecision::SimPruned => out.sim += 1,
            PairDecision::ProbPruned => out.prob += 1,
            PairDecision::InstancePruned => out.instance += 1,
            PairDecision::Match => out.matches.push(norm_pair(probe.id, other.id)),
        }
    }
    out
}

/// An ER worker: owns its shard group for the batch, applies grid
/// mutations in arrival order, and answers traverse/refine requests.
fn worker_loop(
    mut shards: Vec<(usize, ShardGrid)>,
    ctx: WorkerCtx<'_>,
    req_rx: Receiver<Req>,
    resp_tx: Sender<Resp>,
) -> Vec<(usize, ShardGrid)> {
    while let Ok(req) = req_rx.recv() {
        match req {
            Req::Step {
                insert,
                evict,
                probe,
            } => {
                if let Some(meta) = insert {
                    apply_insert(&mut shards, ctx.router, &meta);
                }
                if let Some(meta) = evict {
                    apply_evict(&mut shards, &meta);
                }
                let mut surfaced: FxHashSet<u64> = FxHashSet::default();
                traverse_shards(&shards, &ctx, &probe, &mut surfaced);
                let _ = resp_tx.send(Resp::Surfaced(surfaced.into_iter().collect()));
            }
            Req::Refine { probe, cands } => {
                let _ = resp_tx.send(Resp::Refined(refine_slice(&ctx, &probe, &cands)));
            }
            Req::Finish { insert } => {
                if let Some(meta) = insert {
                    apply_insert(&mut shards, ctx.router, &meta);
                }
                break;
            }
        }
    }
    shards
}

/// How one batch executes phases 2–3: inline on the driving thread
/// (`threads == 1`) or against a pool of channel-driven workers. Both
/// variants apply the same ops in the same order; the driving merge loop
/// ([`ShardedTerIdsEngine::drive_batch`]) is shared.
enum BatchWorkers<'env> {
    Inline {
        shards: Vec<(usize, ShardGrid)>,
        ctx: WorkerCtx<'env>,
    },
    Pool {
        req_txs: Vec<Sender<Req>>,
        resp_rxs: Vec<Receiver<Resp>>,
        ctx: WorkerCtx<'env>,
    },
}

impl BatchWorkers<'_> {
    /// Phase 2 for one arrival: grid maintenance + shard traversal.
    fn step(
        &mut self,
        insert: Option<&Arc<TupleMeta>>,
        evict: Option<&Arc<TupleMeta>>,
        probe: &Arc<TupleMeta>,
    ) -> FxHashSet<u64> {
        match self {
            BatchWorkers::Inline { shards, ctx } => {
                if let Some(meta) = insert {
                    apply_insert(shards, ctx.router, meta);
                }
                if let Some(meta) = evict {
                    apply_evict(shards, meta);
                }
                let mut surfaced = FxHashSet::default();
                traverse_shards(shards, ctx, probe, &mut surfaced);
                surfaced
            }
            BatchWorkers::Pool {
                req_txs, resp_rxs, ..
            } => {
                for tx in req_txs.iter() {
                    tx.send(Req::Step {
                        insert: insert.cloned(),
                        evict: evict.cloned(),
                        probe: Arc::clone(probe),
                    })
                    .expect("ER worker hung up");
                }
                let mut parts = Vec::with_capacity(resp_rxs.len());
                for rx in resp_rxs.iter() {
                    match rx.recv().expect("ER worker hung up") {
                        Resp::Surfaced(ids) => parts.push(ids),
                        Resp::Refined(_) => unreachable!("protocol violation"),
                    }
                }
                merge_surfaced(&parts)
            }
        }
    }

    /// Phase 3 for one arrival: the pair-decision cascade over the
    /// examined candidates, fanned out when it is worth a barrier.
    fn refine(&mut self, probe: &Arc<TupleMeta>, cands: &[Arc<TupleMeta>]) -> RefineOutcome {
        match self {
            BatchWorkers::Inline { ctx, .. } => merge_outcomes([refine_slice(ctx, probe, cands)]),
            BatchWorkers::Pool {
                req_txs,
                resp_rxs,
                ctx,
            } => {
                if cands.len() < REFINE_FANOUT_MIN {
                    return merge_outcomes([refine_slice(ctx, probe, cands)]);
                }
                let per = cands.len().div_ceil(req_txs.len()).max(1);
                let mut chunks = cands.chunks(per);
                let mut sent = 0;
                for tx in req_txs.iter() {
                    let Some(slice) = chunks.next() else { break };
                    tx.send(Req::Refine {
                        probe: Arc::clone(probe),
                        cands: slice.to_vec(),
                    })
                    .expect("ER worker hung up");
                    sent += 1;
                }
                merge_outcomes(resp_rxs.iter().take(sent).map(|rx| {
                    match rx.recv().expect("ER worker hung up") {
                        Resp::Refined(o) => o,
                        Resp::Surfaced(_) => unreachable!("protocol violation"),
                    }
                }))
            }
        }
    }

    /// End of batch: apply the final pending insert. For pool mode the
    /// shard grids travel back through the workers' join handles.
    fn finish(self, insert: Option<Arc<TupleMeta>>) -> Option<Vec<(usize, ShardGrid)>> {
        match self {
            BatchWorkers::Inline {
                mut shards, ctx, ..
            } => {
                if let Some(meta) = insert {
                    apply_insert(&mut shards, ctx.router, &meta);
                }
                Some(shards)
            }
            BatchWorkers::Pool { req_txs, .. } => {
                for tx in req_txs.iter() {
                    tx.send(Req::Finish {
                        insert: insert.clone(),
                    })
                    .expect("ER worker hung up");
                }
                None
            }
        }
    }
}

/// The sharded, batch-parallel TER-iDS engine. See the [module docs](self).
pub struct ShardedTerIdsEngine<'a> {
    ctx: &'a TerContext,
    params: Params,
    mode: PruningMode,
    exec: ExecConfig,
    gamma: f64,
    router: ShardRouter,
    imputer: RuleImputer<'a>,
    /// The partitioned ER-grid; shard `s` holds exactly the cells with
    /// `router.shard_of(key) == s`. Moved into the workers for the
    /// duration of a batch and reassembled afterwards.
    shards: Vec<ShardGrid>,
    window: SlidingWindow<u64>,
    metas: FxHashMap<u64, Arc<TupleMeta>>,
    stream_counts: Vec<usize>,
    topical_ids: FxHashSet<u64>,
    results: ResultSet,
    reported: FxHashSet<(u64, u64)>,
    stats: PruneStats,
    timing: PhaseTiming,
    name: &'static str,
}

impl<'a> ShardedTerIdsEngine<'a> {
    /// Creates a sharded engine over a prebuilt context.
    pub fn new(ctx: &'a TerContext, params: Params, mode: PruningMode, exec: ExecConfig) -> Self {
        params.validate().expect("invalid parameters");
        assert!(exec.shards > 0, "at least one shard");
        assert!(exec.threads > 0, "at least one worker thread");
        let d = ctx.arity();
        Self {
            ctx,
            params,
            mode,
            exec,
            gamma: params.gamma(d),
            router: ShardRouter::new(exec.shards),
            imputer: ctx.indexed_imputer(params.impute),
            shards: (0..exec.shards)
                .map(|_| RegionGrid::new(d, params.grid_cells))
                .collect(),
            window: SlidingWindow::new(params.window),
            metas: FxHashMap::default(),
            stream_counts: Vec::new(),
            topical_ids: FxHashSet::default(),
            results: ResultSet::new(),
            reported: FxHashSet::default(),
            stats: PruneStats::default(),
            timing: PhaseTiming::default(),
            name: match mode {
                PruningMode::Full => "TER-iDS(shard)",
                PruningMode::GridOnly => "Ij+GER(shard)",
            },
        }
    }

    /// The similarity threshold `γ = ρ · d` in use.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Shard count `S`.
    pub fn shard_count(&self) -> usize {
        self.exec.shards
    }

    /// Worker thread count `T`.
    pub fn thread_count(&self) -> usize {
        self.exec.threads
    }

    /// Number of unexpired tuples.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Window capacity `w` (the service layer reports it alongside the
    /// occupancy).
    pub fn window_capacity(&self) -> usize {
        self.params.window
    }

    /// Metadata (including the imputed probabilistic tuple) of a live
    /// tuple.
    pub fn meta(&self, id: u64) -> Option<&TupleMeta> {
        self.metas.get(&id).map(Arc::as_ref)
    }

    /// Ids of the unexpired tuples, ascending (for differential tests
    /// against the sequential engine).
    pub fn live_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.metas.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Cell-entry count per shard (diagnostics: shows how the router
    /// spreads grid load).
    pub fn shard_entry_counts(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(ShardGrid::cell_entry_count)
            .collect()
    }

    /// Snapshots the engine's dynamic state. The representation is the
    /// canonical engine-agnostic [`EngineState`]: shard grids are merged
    /// back into one sorted logical cell list (the router partitions
    /// cells, so the union is disjoint), and per-cell entry order is the
    /// monolithic grid's by the sharding invariant — the exported state is
    /// *equal* to the sequential engine's at the same stream position.
    pub fn export_state(&self) -> EngineState {
        let window: Vec<(u64, u64)> = self.window.iter().map(|(t, id)| (t, *id)).collect();
        let metas = window
            .iter()
            .map(|(_, id)| self.metas[id].as_ref().clone())
            .collect();
        let mut results: Vec<(u64, u64)> = self.results.iter().collect();
        results.sort_unstable();
        let mut reported: Vec<(u64, u64)> = self.reported.iter().copied().collect();
        reported.sort_unstable();
        let mut cells: Vec<(ter_index::CellKey, Vec<u64>)> = self
            .shards
            .iter()
            .flat_map(|g| g.iter_cells())
            .map(|(k, entries)| (k.clone(), entries.iter().map(|e| e.payload).collect()))
            .collect();
        cells.sort_by(|(a, _), (b, _)| a.cmp(b));
        EngineState {
            window_capacity: self.params.window,
            grid_cells: self.params.grid_cells,
            window,
            metas,
            stream_counts: self.stream_counts.clone(),
            results,
            reported,
            stats: self.stats,
            cells,
        }
    }

    /// Replaces the engine's dynamic state with a validated snapshot,
    /// routing each persisted cell to its owning shard. Accepts snapshots
    /// exported by either engine (the representation is shard-agnostic),
    /// so a sequential checkpoint restores into a sharded engine and vice
    /// versa. On `Err` the engine is left untouched.
    pub fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        let d = self.ctx.arity();
        state.validate(d, self.params.window, self.params.grid_cells)?;
        let mut metas: FxHashMap<u64, Arc<TupleMeta>> = FxHashMap::default();
        let mut topical_ids: FxHashSet<u64> = FxHashSet::default();
        for meta in &state.metas {
            if meta.possibly_topical {
                topical_ids.insert(meta.id);
            }
            metas.insert(meta.id, Arc::new(meta.clone()));
        }
        let mut shards: Vec<ShardGrid> = (0..self.exec.shards)
            .map(|_| RegionGrid::new(d, self.params.grid_cells))
            .collect();
        for (key, ids) in &state.cells {
            let shard = &mut shards[self.router.shard_of(key)];
            for id in ids {
                let meta = &metas[id];
                shard.insert_at([key.clone()], &meta.region(), *id, meta.aggregate());
            }
        }
        let mut window = SlidingWindow::new(self.params.window);
        for &(ts, id) in &state.window {
            window.push(ts, id);
        }
        let mut results = ResultSet::new();
        for &(a, b) in &state.results {
            results.insert(a, b);
        }
        self.shards = shards;
        self.window = window;
        self.metas = metas;
        self.stream_counts = state.stream_counts.clone();
        self.topical_ids = topical_ids;
        self.results = results;
        self.reported = state.reported.iter().copied().collect();
        self.stats = state.stats;
        self.timing = PhaseTiming::default();
        Ok(())
    }

    /// Removes the expired tuple from the merge-level maps and returns its
    /// metadata so the workers can evict it from their shards.
    fn expire(&mut self, old_id: u64) -> Option<Arc<TupleMeta>> {
        let meta = self.metas.remove(&old_id)?;
        self.results.remove_involving(old_id);
        self.stream_counts[meta.stream_id] -= 1;
        self.topical_ids.remove(&old_id);
        Some(meta)
    }

    /// Imputes the whole batch (phase 1). Pure per arrival, so chunks run
    /// concurrently; outputs are in arrival order.
    fn impute_batch(&self, batch: &[Arrival]) -> Vec<(Arc<TupleMeta>, PhaseTiming)> {
        let imputer = &self.imputer;
        let ctx = self.ctx;
        if self.exec.threads == 1 || batch.len() == 1 {
            return batch.iter().map(|a| impute_one(imputer, ctx, a)).collect();
        }
        let chunk = batch.len().div_ceil(self.exec.threads);
        let mut out = Vec::with_capacity(batch.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = batch
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || {
                        slice
                            .iter()
                            .map(|a| impute_one(imputer, ctx, a))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("imputation worker panicked"));
            }
        });
        out
    }

    /// The shared per-arrival merge loop (phase 4), driving phases 2–3
    /// through `workers`. Identical for inline and pooled execution.
    fn drive_batch(
        &mut self,
        batch: &[Arrival],
        per_arrival: &[(Arc<TupleMeta>, PhaseTiming)],
        workers: &mut BatchWorkers<'_>,
    ) -> (Vec<StepOutput>, Option<Arc<TupleMeta>>) {
        let mut outputs = Vec::with_capacity(batch.len());
        // The previous arrival's tuple; inserted into the grid by the
        // workers at the start of the *next* step, preserving the
        // sequential op order insert(i) → evict(i+1) → traverse(i+1).
        let mut pending_insert: Option<Arc<TupleMeta>> = None;
        for (arrival, (meta, imp_timing)) in batch.iter().zip(per_arrival) {
            let er_start = Instant::now();

            // ---- expiry (merge phase: window semantics unchanged) ----
            let evicted = self
                .window
                .push(arrival.timestamp, arrival.record.id)
                .and_then(|(_, old_id)| self.expire(old_id));

            // ---- shard-parallel candidate retrieval ----
            let surfaced = workers.step(pending_insert.as_ref(), evicted.as_ref(), meta);

            // ---- candidate selection (shared with the sequential
            // engine: Theorem 4.1 inverted list, ascending-id order so the
            // slice partition across workers is deterministic) ----
            let cands: Vec<Arc<TupleMeta>> =
                candidates::examined_candidates(meta, &surfaced, &self.topical_ids, &self.metas)
                    .into_iter()
                    .map(Arc::clone)
                    .collect();
            let examined = cands.len() as u64;

            // ---- candidate-parallel pruning + refinement ----
            let outcome = workers.refine(meta, &cands);

            // ---- sequential merge: stats, results, registration ----
            self.stats.sim += outcome.sim;
            self.stats.prob += outcome.prob;
            self.stats.instance += outcome.instance;
            self.stats.matches += outcome.matches.len() as u64;
            candidates::account_pairs(
                meta,
                examined,
                &self.stream_counts,
                &self.topical_ids,
                &self.metas,
                &mut self.stats,
            );
            let new_matches = outcome.matches; // sorted by norm_pair
            for &(a, b) in &new_matches {
                self.results.insert(a, b);
                self.reported.insert((a, b));
            }

            if self.stream_counts.len() <= meta.stream_id {
                self.stream_counts.resize(meta.stream_id + 1, 0);
            }
            self.stream_counts[meta.stream_id] += 1;
            if meta.possibly_topical {
                self.topical_ids.insert(meta.id);
            }
            let prev = self.metas.insert(meta.id, Arc::clone(meta));
            assert!(prev.is_none(), "duplicate tuple id {}", meta.id);
            pending_insert = Some(Arc::clone(meta));

            let mut step_timing = *imp_timing;
            step_timing.er += er_start.elapsed();
            self.timing.accumulate(&step_timing);
            outputs.push(StepOutput {
                new_matches,
                timing: step_timing,
            });
        }
        (outputs, pending_insert)
    }

    /// Phases 2–4 for one batch: shard workers + sequential merge.
    fn step_batch_impl(&mut self, batch: &[Arrival]) -> Vec<StepOutput> {
        if batch.is_empty() {
            return Vec::new();
        }
        let per_arrival = self.impute_batch(batch);

        let threads = self.exec.threads;
        let shard_count = self.shards.len();
        let worker_ctx = WorkerCtx {
            router: self.router,
            pair: PairContext {
                keywords: &self.ctx.keywords,
                gamma: self.gamma,
                alpha: self.params.alpha,
                aux_counts: &self.ctx.aux_counts,
                mode: self.mode,
            },
        };
        let owned: Vec<(usize, ShardGrid)> = self.shards.drain(..).enumerate().collect();

        if threads == 1 {
            // Inline fast path: same ops, same order, no pool.
            let mut workers = BatchWorkers::Inline {
                shards: owned,
                ctx: worker_ctx,
            };
            let (outputs, pending) = self.drive_batch(batch, &per_arrival, &mut workers);
            let shards = workers.finish(pending).expect("inline mode returns shards");
            self.shards = shards.into_iter().map(|(_, g)| g).collect();
            return outputs;
        }

        // Workers own disjoint shard groups for the whole batch (shard s →
        // worker s mod T), so each cell's op sequence is applied by exactly
        // one worker, in arrival order — identical to the monolithic grid.
        let mut groups: Vec<Vec<(usize, ShardGrid)>> = (0..threads).map(|_| Vec::new()).collect();
        for (sid, grid) in owned {
            groups[sid % threads].push((sid, grid));
        }

        let mut outputs = Vec::with_capacity(batch.len());
        std::thread::scope(|scope| {
            let mut req_txs = Vec::with_capacity(threads);
            let mut resp_rxs = Vec::with_capacity(threads);
            let mut handles = Vec::with_capacity(threads);
            for group in groups.drain(..) {
                let (req_tx, req_rx) = channel::<Req>();
                let (resp_tx, resp_rx) = channel::<Resp>();
                req_txs.push(req_tx);
                resp_rxs.push(resp_rx);
                handles.push(scope.spawn(move || worker_loop(group, worker_ctx, req_rx, resp_tx)));
            }
            let mut workers = BatchWorkers::Pool {
                req_txs,
                resp_rxs,
                ctx: worker_ctx,
            };
            let (outs, pending) = self.drive_batch(batch, &per_arrival, &mut workers);
            outputs = outs;
            workers.finish(pending);
            let mut returned: Vec<(usize, ShardGrid)> = Vec::with_capacity(shard_count);
            for h in handles {
                returned.extend(h.join().expect("ER worker panicked"));
            }
            returned.sort_by_key(|(sid, _)| *sid);
            self.shards = returned.into_iter().map(|(_, g)| g).collect();
        });
        debug_assert_eq!(self.shards.len(), shard_count);
        outputs
    }
}

/// Phase-1 work for one arrival: imputation + metadata derivation. A pure
/// function of the static context and the arriving record — mirrors the
/// sequential engine's imputation block including its phase timings.
fn impute_one(
    imputer: &RuleImputer<'_>,
    ctx: &TerContext,
    arrival: &Arrival,
) -> (Arc<TupleMeta>, PhaseTiming) {
    let mut timing = PhaseTiming {
        arrivals: 1,
        ..PhaseTiming::default()
    };
    let pt = if arrival.record.is_complete() {
        ProbTuple::certain(arrival.record.clone())
    } else {
        let t = Instant::now();
        let selected = imputer.select_rules(&arrival.record);
        timing.rule_selection += t.elapsed();
        let t = Instant::now();
        let pt = imputer.impute_with_rules(&arrival.record, &selected);
        timing.imputation += t.elapsed();
        pt
    };
    let meta = TupleMeta::build(
        arrival.record.id,
        arrival.stream_id,
        arrival.timestamp,
        pt,
        &ctx.pivots,
        &ctx.layout,
        &ctx.keywords,
    );
    (Arc::new(meta), timing)
}

impl ErProcessor for ShardedTerIdsEngine<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn process(&mut self, arrival: &Arrival) -> StepOutput {
        self.step_batch_impl(std::slice::from_ref(arrival))
            .pop()
            .expect("one output per arrival")
    }

    fn step_batch(&mut self, batch: &[Arrival]) -> Vec<StepOutput> {
        self.step_batch_impl(batch)
    }

    fn results(&self) -> &ResultSet {
        &self.results
    }

    fn reported(&self) -> &FxHashSet<(u64, u64)> {
        &self.reported
    }

    fn prune_stats(&self) -> PruneStats {
        self.stats
    }

    fn timing(&self) -> PhaseTiming {
        self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_ids::TerIdsEngine;
    use ter_repo::{PivotConfig, Record, Repository, Schema};
    use ter_rules::DiscoveryConfig;
    use ter_stream::StreamSet;
    use ter_text::{Dictionary, KeywordSet};

    /// The same 2-stream scenario as the sequential engine's unit tests.
    fn scenario() -> (TerContext, StreamSet) {
        let schema = Schema::new(vec!["title", "tags"]);
        let mut dict = Dictionary::new();
        let repo_rows = [
            ("space cowboy adventure", "scifi western"),
            ("space cowboy adventure saga", "scifi western"),
            ("high school romance", "drama comedy"),
            ("high school romance club", "drama comedy"),
            ("cooking master", "comedy food"),
            ("idol music live", "music idol"),
        ];
        let repo_recs = repo_rows
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                Record::from_texts(&schema, 1000 + i as u64, &[Some(a), Some(b)], &mut dict)
            })
            .collect();
        let repo = Repository::from_records(schema.clone(), repo_recs);
        let keywords = KeywordSet::parse("scifi", &dict);
        let ctx = TerContext::build(
            repo,
            keywords,
            &PivotConfig::default(),
            &DiscoveryConfig {
                min_support: 2,
                min_constant_support: 2,
                ..DiscoveryConfig::default()
            },
            16,
        );
        let s0 = vec![
            Record::from_texts(
                &schema,
                1,
                &[Some("space cowboy adventure"), Some("scifi western")],
                &mut dict,
            ),
            Record::from_texts(
                &schema,
                3,
                &[Some("cooking master"), Some("comedy food")],
                &mut dict,
            ),
        ];
        let s1 = vec![
            Record::from_texts(
                &schema,
                2,
                &[Some("space cowboy adventure"), Some("scifi western")],
                &mut dict,
            ),
            Record::from_texts(
                &schema,
                4,
                &[Some("idol music live"), Some("music idol")],
                &mut dict,
            ),
        ];
        (ctx, StreamSet::new(vec![s0, s1]))
    }

    #[test]
    fn finds_the_obvious_match_in_one_batch() {
        let (ctx, streams) = scenario();
        let exec = ExecConfig {
            shards: 4,
            threads: 2,
        };
        let mut e = ShardedTerIdsEngine::new(&ctx, Params::default(), PruningMode::Full, exec);
        let outs = e.step_batch(&streams.arrivals());
        let all: Vec<(u64, u64)> = outs.iter().flat_map(|o| o.new_matches.clone()).collect();
        assert_eq!(all, vec![(1, 2)]);
        assert!(e.results().contains(1, 2));
        assert_eq!(e.window_len(), 4);
    }

    #[test]
    fn agrees_with_sequential_engine_across_batch_sizes() {
        let (ctx, streams) = scenario();
        let mut seq = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
        let mut seq_steps = Vec::new();
        for a in streams.arrivals() {
            let mut m = seq.process(&a).new_matches;
            m.sort_unstable();
            seq_steps.push(m);
        }
        for batch in 1..=5 {
            for threads in [1usize, 2] {
                let exec = ExecConfig { shards: 3, threads };
                let mut par =
                    ShardedTerIdsEngine::new(&ctx, Params::default(), PruningMode::Full, exec);
                let mut par_steps = Vec::new();
                for chunk in streams.arrival_batches(batch) {
                    par_steps.extend(par.step_batch(&chunk).into_iter().map(|o| o.new_matches));
                }
                assert_eq!(par_steps, seq_steps, "batch {batch}, threads {threads}");
                assert_eq!(
                    par.prune_stats(),
                    seq.prune_stats(),
                    "batch {batch}, threads {threads}"
                );
                assert_eq!(
                    par.live_ids(),
                    seq.live_ids(),
                    "batch {batch}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn expiry_matches_sequential_semantics() {
        let (ctx, streams) = scenario();
        let params = Params {
            window: 2,
            ..Params::default()
        };
        let exec = ExecConfig {
            shards: 2,
            threads: 2,
        };
        let mut e = ShardedTerIdsEngine::new(&ctx, params, PruningMode::Full, exec);
        let arrivals = streams.arrivals();
        e.step_batch(&arrivals[..2]);
        assert!(e.results().contains(1, 2));
        e.step_batch(&arrivals[2..3]);
        assert!(!e.results().contains(1, 2), "pair must expire with tuple 1");
        assert!(e.reported().contains(&(1, 2)));
        assert_eq!(e.window_len(), 2);
    }

    #[test]
    fn timing_is_recorded() {
        let (ctx, streams) = scenario();
        let exec = ExecConfig {
            shards: 2,
            threads: 2,
        };
        let mut e = ShardedTerIdsEngine::new(&ctx, Params::default(), PruningMode::Full, exec);
        e.step_batch(&streams.arrivals());
        let t = e.timing();
        assert_eq!(t.arrivals, 4);
        assert!(t.total().as_nanos() > 0);
    }

    /// The sharded engine's exported state must be byte-for-byte the
    /// sequential engine's (same canonical representation, same per-cell
    /// entry order), and checkpoints must restore across engine kinds.
    #[test]
    fn state_is_engine_agnostic() {
        let (ctx, streams) = scenario();
        let params = Params {
            window: 3, // forces an eviction across the 4 arrivals
            ..Params::default()
        };
        let arrivals = streams.arrivals();
        let mut seq = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        for a in &arrivals {
            seq.process(a);
        }
        let exec = ExecConfig {
            shards: 4,
            threads: 2,
        };
        let mut par = ShardedTerIdsEngine::new(&ctx, params, PruningMode::Full, exec);
        par.step_batch(&arrivals);
        let state = seq.export_state();
        assert_eq!(par.export_state(), state, "export representations differ");

        // Sequential checkpoint → sharded engine (different shard count).
        let mut restored = ShardedTerIdsEngine::new(
            &ctx,
            params,
            PruningMode::Full,
            ExecConfig {
                shards: 3,
                threads: 1,
            },
        );
        restored.import_state(&state).unwrap();
        assert_eq!(restored.export_state(), state);
        assert_eq!(restored.live_ids(), seq.live_ids());

        // Sharded checkpoint → sequential engine.
        let mut back = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        back.import_state(&par.export_state()).unwrap();
        assert_eq!(back.export_state(), state);
    }

    #[test]
    fn import_rejects_mismatched_window() {
        let (ctx, streams) = scenario();
        let exec = ExecConfig {
            shards: 2,
            threads: 1,
        };
        let mut e = ShardedTerIdsEngine::new(&ctx, Params::default(), PruningMode::Full, exec);
        e.step_batch(&streams.arrivals());
        let state = e.export_state();
        let mut other = ShardedTerIdsEngine::new(
            &ctx,
            Params {
                window: 9,
                ..Params::default()
            },
            PruningMode::Full,
            exec,
        );
        assert!(other.import_state(&state).is_err());
        assert_eq!(other.window_len(), 0);
    }

    #[test]
    fn grid_load_is_spread_across_shards() {
        let (ctx, streams) = scenario();
        let exec = ExecConfig {
            shards: 8,
            threads: 2,
        };
        let mut e = ShardedTerIdsEngine::new(&ctx, Params::default(), PruningMode::Full, exec);
        e.step_batch(&streams.arrivals());
        let counts = e.shard_entry_counts();
        assert_eq!(counts.len(), 8);
        assert!(counts.iter().sum::<usize>() > 0);
    }
}
