//! The sharded, batch-parallel TER-iDS engine.
//!
//! [`ShardedTerIdsEngine`] processes arrivals in batches
//! ([`ter_ids::ErProcessor::step_batch`]) and produces output
//! **bit-identical** to the sequential [`ter_ids::TerIdsEngine`] for any
//! shard count, thread count, batch size, and drive mode. The
//! per-arrival pipeline is decomposed into the named stages of
//! [`stages`](crate::stages) — **impute → traverse → refine → merge** —
//! and executed by the persistent worker pool of
//! [`pool`](crate::pool):
//!
//! 1. **Impute** — rule selection, imputation, and [`TupleMeta`]
//!    derivation read only the static [`TerContext`], so the whole batch
//!    is imputed concurrently (contiguous chunks across workers) with
//!    per-arrival results equal to the sequential engine's.
//! 2. **Traverse** — the ER-grid is partitioned into `S` shards by
//!    cell-key hash ([`ShardRouter`]); each worker owns a disjoint shard
//!    group for the batch and applies grid mutations (the previous
//!    arrival's insert, this arrival's expiry) in arrival order before
//!    traversing with the shared cell-level predicate, so every cell
//!    sees exactly the op sequence the monolithic grid would.
//! 3. **Refine** — the surfaced union is filtered and partitioned; each
//!    worker routes its slice through the shared cascade
//!    ([`ter_ids::decide_pair`]). Small candidate sets are refined on the
//!    driving thread instead — a synchronization barrier is not worth a
//!    handful of pairs (`refine_fanout_min`).
//! 4. **Merge** — window maintenance, expiry, result-set and statistics
//!    updates happen on the driving thread in arrival order (per-worker
//!    tallies merged deterministically, matches ordered by
//!    `(arrival_seq, norm_pair)`), so window semantics are unchanged.
//!
//! # Drive modes
//!
//! The lock-step drive pays two barriers per arrival: the merge thread
//! waits for every worker's traverse, computes the candidate set, fans
//! the refine out, and waits again. The **overlapped** drive
//! ([`ExecConfig::overlap`], the default) halves that: after imputation
//! both arrival `i`'s refine *and* arrival `i+1`'s traverse inputs are
//! known (the eviction schedule is a pure function of the window and the
//! arrival order — [`stages::eviction_schedule`](crate::stages)), so the
//! merge thread queues `Refine(i)` and `Step(i+1)` together and pays one
//! combined wait. Workers answer in FIFO order, so the interleaving is
//! deterministic; the op order seen by every grid cell and the merge
//! order are *identical* to the lock-step drive, which is why the parity
//! suites can require bit-equality across both modes. The saving is
//! instrumented: [`StageMetrics::er_barriers`] counts the merge thread's
//! wait rounds.
//!
//! # Pool sessions
//!
//! With `threads == 1` the whole pipeline runs inline on the driving
//! thread — no pool, no channels — so the single-thread configuration is
//! a fair baseline rather than a message-passing straw man. With more
//! threads, a plain [`ErProcessor::step_batch`] call spins the pool up
//! for that one batch; long-lived consumers (the `ter_serve` daemon, the
//! benches) wrap their feed loop in [`ShardedTerIdsEngine::with_pool`]
//! so the workers persist across batches and only the shard groups
//! travel per batch.

use std::sync::Arc;
use std::time::Instant;

use ter_ids::candidates;
use ter_ids::meta::TupleMeta;
use ter_ids::{
    EngineState, ErProcessor, Params, PhaseTiming, PruneStats, PruningMode, ResultSet,
    StageMetrics, StepOutput, TerContext,
};
use ter_impute::RuleImputer;
use ter_index::RegionGrid;
use ter_stream::{Arrival, SlidingWindow};
use ter_text::fxhash::{FxHashMap, FxHashSet};

use crate::merge::{merge_outcomes, RefineOutcome};
use crate::pool::{pool_channels, worker_loop, Pool};
use crate::router::ShardRouter;
use crate::stages::{
    apply_insert, eviction_schedule, impute_one, refine_slice, ShardGrid, WorkerCtx,
};

/// Parallel execution knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Number of ER-grid shards `S` (cells are hash-partitioned across
    /// them). Result-invariant; more shards than threads lets the router
    /// balance cell load across workers.
    pub shards: usize,
    /// Worker threads `T` driving imputation, traversal, and refinement.
    /// Result-invariant; `1` runs the whole pipeline inline.
    pub threads: usize,
    /// Overlap arrival `i`'s refine with arrival `i+1`'s traverse,
    /// halving the merge thread's barrier count per arrival.
    /// Result-invariant (enforced by the parity suites); ignored when
    /// `threads == 1`.
    pub overlap: bool,
    /// Candidate sets smaller than this are refined on the driving
    /// thread: the per-arrival fan-out barrier costs more than deciding
    /// a few pairs. Result-invariant — both paths run the same
    /// [`decide_pair`](ter_ids::decide_pair) cascade.
    pub refine_fanout_min: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self {
            shards: 8,
            threads,
            overlap: true,
            refine_fanout_min: 16,
        }
    }
}

impl ExecConfig {
    /// `shards`/`threads` with the default drive knobs (overlap on,
    /// fan-out threshold 16).
    pub fn new(shards: usize, threads: usize) -> Self {
        Self {
            shards,
            threads,
            ..Self::default()
        }
    }

    /// The same configuration with the overlapped drive toggled.
    pub fn with_overlap(self, overlap: bool) -> Self {
        Self { overlap, ..self }
    }
}

/// The sharded, batch-parallel TER-iDS engine. See the [module docs](self).
pub struct ShardedTerIdsEngine<'a> {
    ctx: &'a TerContext,
    params: Params,
    mode: PruningMode,
    exec: ExecConfig,
    gamma: f64,
    router: ShardRouter,
    imputer: RuleImputer<'a>,
    /// The partitioned ER-grid; shard `s` holds exactly the cells with
    /// `router.shard_of(key) == s`. Handed to the workers for the
    /// duration of a batch and reassembled afterwards.
    shards: Vec<ShardGrid>,
    window: SlidingWindow<u64>,
    metas: FxHashMap<u64, Arc<TupleMeta>>,
    stream_counts: Vec<usize>,
    topical_ids: FxHashSet<u64>,
    results: ResultSet,
    reported: FxHashSet<(u64, u64)>,
    stats: PruneStats,
    timing: PhaseTiming,
    metrics: StageMetrics,
    name: &'static str,
}

impl<'a> ShardedTerIdsEngine<'a> {
    /// Creates a sharded engine over a prebuilt context.
    pub fn new(ctx: &'a TerContext, params: Params, mode: PruningMode, exec: ExecConfig) -> Self {
        params.validate().expect("invalid parameters");
        assert!(exec.shards > 0, "at least one shard");
        assert!(exec.threads > 0, "at least one worker thread");
        let d = ctx.arity();
        Self {
            ctx,
            params,
            mode,
            exec,
            gamma: params.gamma(d),
            router: ShardRouter::new(exec.shards),
            imputer: ctx.indexed_imputer(params.impute),
            shards: (0..exec.shards)
                .map(|_| RegionGrid::new(d, params.grid_cells))
                .collect(),
            window: SlidingWindow::new(params.window),
            metas: FxHashMap::default(),
            stream_counts: Vec::new(),
            topical_ids: FxHashSet::default(),
            results: ResultSet::new(),
            reported: FxHashSet::default(),
            stats: PruneStats::default(),
            timing: PhaseTiming::default(),
            metrics: StageMetrics::default(),
            name: match mode {
                PruningMode::Full => "TER-iDS(shard)",
                PruningMode::GridOnly => "Ij+GER(shard)",
            },
        }
    }

    /// The similarity threshold `γ = ρ · d` in use.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Shard count `S`.
    pub fn shard_count(&self) -> usize {
        self.exec.shards
    }

    /// Worker thread count `T`.
    pub fn thread_count(&self) -> usize {
        self.exec.threads
    }

    /// Number of unexpired tuples.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Window capacity `w` (the service layer reports it alongside the
    /// occupancy).
    pub fn window_capacity(&self) -> usize {
        self.params.window
    }

    /// Metadata (including the imputed probabilistic tuple) of a live
    /// tuple.
    pub fn meta(&self, id: u64) -> Option<&TupleMeta> {
        self.metas.get(&id).map(Arc::as_ref)
    }

    /// Ids of the unexpired tuples, ascending (for differential tests
    /// against the sequential engine).
    pub fn live_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.metas.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Cell-entry count per shard (diagnostics: shows how the router
    /// spreads grid load).
    pub fn shard_entry_counts(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(ShardGrid::cell_entry_count)
            .collect()
    }

    /// Entry counts of every occupied grid cell across all shards — the
    /// density statistic the query planner's greedy join-order heuristic
    /// reads instead of maintaining histograms.
    pub fn cell_entry_counts(&self) -> Vec<usize> {
        self.shards
            .iter()
            .flat_map(|g| g.iter_cells().map(|(_, entries)| entries.len()))
            .collect()
    }

    /// Live tuple count per stream id.
    pub fn stream_tuple_counts(&self) -> &[usize] {
        &self.stream_counts
    }

    /// Number of live tuples currently flagged possibly-topical.
    pub fn topical_count(&self) -> usize {
        self.topical_ids.len()
    }

    /// Runs `f` against this engine with a **persistent** worker pool
    /// attached: the `threads` workers (each owning its session-long
    /// CDD-indexed imputer) spawn once, and every
    /// [`PooledEngine::step_batch`] inside reuses them — only the shard
    /// groups travel per batch. With `threads == 1` no pool is spawned
    /// and the handle drives the inline path, so callers can wrap their
    /// feed loop unconditionally. The pool joins before `with_pool`
    /// returns.
    pub fn with_pool<R>(&mut self, f: impl FnOnce(&mut PooledEngine<'_, 'a>) -> R) -> R {
        if self.exec.threads == 1 {
            return f(&mut PooledEngine {
                eng: self,
                pool: None,
            });
        }
        let ctx: &'a TerContext = self.ctx;
        let wctx = self.worker_ctx();
        let impute_cfg = self.params.impute;
        let threads = self.exec.threads;
        std::thread::scope(move |scope| {
            let mut chans = Vec::with_capacity(threads);
            for _ in 0..threads {
                let (chan, req_rx, resp_tx) = pool_channels();
                scope.spawn(move || {
                    // Each worker owns its imputer for the session; it is
                    // a cheap view over the context's prebuilt indexes,
                    // and identical inputs give identical imputations.
                    let imputer = ctx.indexed_imputer(impute_cfg);
                    worker_loop(wctx, ctx, &imputer, req_rx, resp_tx);
                });
                chans.push(chan);
            }
            let mut pe = PooledEngine {
                eng: self,
                pool: Some(Pool::new(chans)),
            };
            let out = f(&mut pe);
            // Dropping the handle drops the request senders — the
            // session-end signal — and the scope joins the workers.
            drop(pe);
            out
        })
    }

    /// The session-invariant worker inputs, borrowing only from the
    /// static context (never from `self`), so a live pool and a mutable
    /// engine coexist.
    fn worker_ctx(&self) -> WorkerCtx<'a> {
        let ctx = self.ctx;
        WorkerCtx {
            router: self.router,
            pair: ter_ids::PairContext {
                keywords: &ctx.keywords,
                gamma: self.gamma,
                alpha: self.params.alpha,
                aux_counts: &ctx.aux_counts,
                mode: self.mode,
            },
        }
    }

    /// Snapshots the engine's dynamic state. The representation is the
    /// canonical engine-agnostic [`EngineState`]: shard grids are merged
    /// back into one sorted logical cell list (the router partitions
    /// cells, so the union is disjoint), and per-cell entry order is the
    /// monolithic grid's by the sharding invariant — the exported state is
    /// *equal* to the sequential engine's at the same stream position.
    pub fn export_state(&self) -> EngineState {
        let window: Vec<(u64, u64)> = self.window.iter().map(|(t, id)| (t, *id)).collect();
        let metas = window
            .iter()
            .map(|(_, id)| self.metas[id].as_ref().clone())
            .collect();
        let mut results: Vec<(u64, u64)> = self.results.iter().collect();
        results.sort_unstable();
        let mut reported: Vec<(u64, u64)> = self.reported.iter().copied().collect();
        reported.sort_unstable();
        let mut cells: Vec<(ter_index::CellKey, Vec<u64>)> = self
            .shards
            .iter()
            .flat_map(|g| g.iter_cells())
            .map(|(k, entries)| (k.clone(), entries.iter().map(|e| e.payload).collect()))
            .collect();
        cells.sort_by(|(a, _), (b, _)| a.cmp(b));
        EngineState {
            window_capacity: self.params.window,
            grid_cells: self.params.grid_cells,
            window,
            metas,
            stream_counts: self.stream_counts.clone(),
            results,
            reported,
            stats: self.stats,
            cells,
        }
    }

    /// Replaces the engine's dynamic state with a validated snapshot,
    /// routing each persisted cell to its owning shard. Accepts snapshots
    /// exported by either engine (the representation is shard-agnostic),
    /// so a sequential checkpoint restores into a sharded engine and vice
    /// versa. On `Err` the engine is left untouched.
    pub fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        let d = self.ctx.arity();
        state.validate(d, self.params.window, self.params.grid_cells)?;
        let mut metas: FxHashMap<u64, Arc<TupleMeta>> = FxHashMap::default();
        let mut topical_ids: FxHashSet<u64> = FxHashSet::default();
        for meta in &state.metas {
            if meta.possibly_topical {
                topical_ids.insert(meta.id);
            }
            metas.insert(meta.id, Arc::new(meta.clone()));
        }
        let mut shards: Vec<ShardGrid> = (0..self.exec.shards)
            .map(|_| RegionGrid::new(d, self.params.grid_cells))
            .collect();
        for (key, ids) in &state.cells {
            let shard = &mut shards[self.router.shard_of(key)];
            for id in ids {
                let meta = &metas[id];
                shard.insert_at([key.clone()], &meta.region(), *id, meta.aggregate());
            }
        }
        let mut window = SlidingWindow::new(self.params.window);
        for &(ts, id) in &state.window {
            window.push(ts, id);
        }
        let mut results = ResultSet::new();
        for &(a, b) in &state.results {
            results.insert(a, b);
        }
        self.shards = shards;
        self.window = window;
        self.metas = metas;
        self.stream_counts = state.stream_counts.clone();
        self.topical_ids = topical_ids;
        self.results = results;
        self.reported = state.reported.iter().copied().collect();
        self.stats = state.stats;
        self.timing = PhaseTiming::default();
        Ok(())
    }

    /// Removes the expired tuple from the merge-level maps. Returns its
    /// metadata so the workers can evict it from their shards, plus the
    /// live pairs the eviction dropped (normalized and sorted — the
    /// step's retraction delta).
    fn expire(&mut self, old_id: u64) -> (Option<Arc<TupleMeta>>, Vec<(u64, u64)>) {
        let Some(meta) = self.metas.remove(&old_id) else {
            return (None, Vec::new());
        };
        let removed = self.results.remove_involving(old_id);
        self.stream_counts[meta.stream_id] -= 1;
        self.topical_ids.remove(&old_id);
        (Some(meta), removed)
    }

    /// The merge stage for one arrival: fold the refine outcome into the
    /// statistics, attribute never-examined pairs, publish matches, and
    /// register the new tuple. Strictly sequential, in arrival order —
    /// shared verbatim by every drive mode, which is what keeps them
    /// bit-identical.
    fn finalize_arrival(
        &mut self,
        meta: &Arc<TupleMeta>,
        examined: u64,
        outcome: RefineOutcome,
    ) -> Vec<(u64, u64)> {
        self.stats.sim += outcome.sim;
        self.stats.prob += outcome.prob;
        self.stats.instance += outcome.instance;
        self.stats.matches += outcome.matches.len() as u64;
        candidates::account_pairs(
            meta,
            examined,
            &self.stream_counts,
            &self.topical_ids,
            &self.metas,
            &mut self.stats,
        );
        let new_matches = outcome.matches; // sorted by norm_pair
        for &(a, b) in &new_matches {
            self.results.insert(a, b);
            self.reported.insert((a, b));
        }
        if self.stream_counts.len() <= meta.stream_id {
            self.stream_counts.resize(meta.stream_id + 1, 0);
        }
        self.stream_counts[meta.stream_id] += 1;
        if meta.possibly_topical {
            self.topical_ids.insert(meta.id);
        }
        let prev = self.metas.insert(meta.id, Arc::clone(meta));
        assert!(prev.is_none(), "duplicate tuple id {}", meta.id);
        new_matches
    }
}

/// How one batch executes the traverse/refine stages: inline on the
/// driving thread (`threads == 1`) or against the session's worker pool.
/// Both variants apply the same ops in the same order; the lock-step
/// merge loop ([`drive_lockstep`]) is shared.
enum BatchWorkers<'p, 'a> {
    Inline {
        shards: Vec<(usize, ShardGrid)>,
        wctx: WorkerCtx<'a>,
    },
    Pool {
        pool: &'p Pool,
        wctx: WorkerCtx<'a>,
    },
}

impl BatchWorkers<'_, '_> {
    /// Traverse stage for one arrival: grid maintenance + shard traversal.
    fn step(
        &mut self,
        insert: Option<&Arc<TupleMeta>>,
        evict: Option<&Arc<TupleMeta>>,
        probe: &Arc<TupleMeta>,
        metrics: &mut StageMetrics,
    ) -> FxHashSet<u64> {
        match self {
            BatchWorkers::Inline { shards, wctx } => {
                if let Some(meta) = insert {
                    apply_insert(shards, wctx.router, meta);
                }
                if let Some(meta) = evict {
                    crate::stages::apply_evict(shards, meta);
                }
                let mut surfaced = FxHashSet::default();
                crate::stages::traverse_shards(shards, wctx, probe, &mut surfaced);
                surfaced
            }
            BatchWorkers::Pool { pool, .. } => {
                pool.send_step(insert, evict, probe);
                metrics.er_barriers += 1;
                pool.collect_surfaced()
            }
        }
    }

    /// Refine stage for one arrival: the pair-decision cascade over the
    /// examined candidates, fanned out when it is worth a barrier.
    fn refine(
        &mut self,
        probe: &Arc<TupleMeta>,
        cands: &[Arc<TupleMeta>],
        fanout_min: usize,
        metrics: &mut StageMetrics,
    ) -> RefineOutcome {
        match self {
            BatchWorkers::Inline { wctx, .. } => merge_outcomes([refine_slice(wctx, probe, cands)]),
            BatchWorkers::Pool { pool, wctx } => {
                if cands.len() < fanout_min {
                    return merge_outcomes([refine_slice(wctx, probe, cands)]);
                }
                let sent = pool.send_refine(probe, cands);
                if sent == 0 {
                    return RefineOutcome::default();
                }
                metrics.er_barriers += 1;
                metrics.fanned_refines += 1;
                pool.collect_refined(sent)
            }
        }
    }
}

/// Records one batch's accumulated per-stage wall-times into the global
/// observability registry — one histogram observation per stage per
/// batch, so the hot loop only pays local integer adds. No-op when
/// observability is disabled ([`ter_obs::timer`] returns `None` then, so
/// the accumulators stay zero and nothing is recorded).
fn record_stage_batch(traverse_us: u64, refine_us: u64, merge_us: u64, barrier_us: Option<u64>) {
    if !ter_obs::enabled() {
        return;
    }
    let seq = ter_obs::OBS.engine_batches.get();
    ter_obs::OBS.engine_traverse_micros.record(traverse_us);
    ter_obs::flight(ter_obs::kind::TRAVERSE, seq, 0, 0, traverse_us);
    ter_obs::trace::add_current_elapsed(ter_obs::trace::kind::TRAVERSE, traverse_us);
    ter_obs::OBS.engine_refine_micros.record(refine_us);
    ter_obs::flight(ter_obs::kind::REFINE, seq, 0, 0, refine_us);
    ter_obs::trace::add_current_elapsed(ter_obs::trace::kind::REFINE, refine_us);
    ter_obs::OBS.engine_merge_micros.record(merge_us);
    ter_obs::flight(ter_obs::kind::MERGE, seq, 0, 0, merge_us);
    ter_obs::trace::add_current_elapsed(ter_obs::trace::kind::MERGE, merge_us);
    if let Some(b) = barrier_us {
        ter_obs::OBS.engine_barrier_wait_micros.record(b);
        ter_obs::trace::add_current_elapsed(ter_obs::trace::kind::BARRIER, b);
    }
}

/// Adds the microseconds since an enabled [`ter_obs::timer`] to a local
/// stage accumulator (free when disabled).
fn lap(t0: Option<Instant>, acc: &mut u64) {
    if let Some(t0) = t0 {
        *acc += t0.elapsed().as_micros() as u64;
    }
}

/// The lock-step drive: per arrival, wait for the traverse, then wait for
/// the fanned refine — two barriers. Shared by the inline path (where
/// the "waits" are plain function calls and cost nothing).
fn drive_lockstep<'a>(
    eng: &mut ShardedTerIdsEngine<'a>,
    batch: &[Arrival],
    per_arrival: &[(Arc<TupleMeta>, PhaseTiming)],
    workers: &mut BatchWorkers<'_, 'a>,
) -> (Vec<StepOutput>, Option<Arc<TupleMeta>>) {
    let mut outputs = Vec::with_capacity(batch.len());
    let (mut traverse_us, mut refine_us, mut merge_us) = (0u64, 0u64, 0u64);
    // The previous arrival's tuple; inserted into the grid by the
    // workers at the start of the *next* step, preserving the
    // sequential op order insert(i) → evict(i+1) → traverse(i+1).
    let mut pending_insert: Option<Arc<TupleMeta>> = None;
    for (arrival, (meta, imp_timing)) in batch.iter().zip(per_arrival) {
        let er_start = Instant::now();

        // ---- expiry (merge phase: window semantics unchanged) ----
        let mut t0 = ter_obs::timer();
        let mut retractions = Vec::new();
        let mut expired = Vec::new();
        let evicted = eng
            .window
            .push(arrival.timestamp, arrival.record.id)
            .and_then(|(_, old_id)| {
                expired.push(old_id);
                let (meta, removed) = eng.expire(old_id);
                retractions = removed;
                meta
            });
        lap(t0, &mut merge_us);

        // ---- traverse ----
        t0 = ter_obs::timer();
        let surfaced = workers.step(
            pending_insert.as_ref(),
            evicted.as_ref(),
            meta,
            &mut eng.metrics,
        );
        lap(t0, &mut traverse_us);

        // ---- candidate selection (shared with the sequential engine:
        // Theorem 4.1 inverted list, ascending-id order so the slice
        // partition across workers is deterministic) ----
        t0 = ter_obs::timer();
        let cands: Vec<Arc<TupleMeta>> =
            candidates::examined_candidates(meta, &surfaced, &eng.topical_ids, &eng.metas)
                .into_iter()
                .map(Arc::clone)
                .collect();
        let examined = cands.len() as u64;

        // ---- refine ----
        let outcome = workers.refine(meta, &cands, eng.exec.refine_fanout_min, &mut eng.metrics);
        lap(t0, &mut refine_us);

        // ---- merge ----
        t0 = ter_obs::timer();
        let new_matches = eng.finalize_arrival(meta, examined, outcome);
        lap(t0, &mut merge_us);
        pending_insert = Some(Arc::clone(meta));

        let mut step_timing = *imp_timing;
        step_timing.er += er_start.elapsed();
        eng.timing.accumulate(&step_timing);
        outputs.push(StepOutput {
            new_matches,
            retractions,
            expired,
            timing: step_timing,
        });
    }
    record_stage_batch(traverse_us, refine_us, merge_us, None);
    (outputs, pending_insert)
}

/// Resolves a scheduled eviction to its metadata: an in-batch arrival
/// (it may expire before the batch ends) or a prior window resident.
fn scheduled_evict_meta(
    scheduled: Option<u64>,
    idx_of: &FxHashMap<u64, usize>,
    per_arrival: &[(Arc<TupleMeta>, PhaseTiming)],
    metas: &FxHashMap<u64, Arc<TupleMeta>>,
) -> Option<Arc<TupleMeta>> {
    scheduled.map(|id| match idx_of.get(&id) {
        Some(&k) => Arc::clone(&per_arrival[k].0),
        None => Arc::clone(metas.get(&id).expect("scheduled eviction of unknown tuple")),
    })
}

/// The overlapped drive: one combined barrier per arrival. Arrival
/// `i+1`'s traverse (insert `i`, evict per the precomputed schedule,
/// probe `i+1`) is queued right after arrival `i`'s refine, so the
/// workers flow from refining `i` straight into traversing `i+1` while
/// the merge thread finalizes `i`. Grid op order and merge order are
/// identical to the lock-step drive — only the waiting changes.
fn drive_overlapped<'a>(
    eng: &mut ShardedTerIdsEngine<'a>,
    pool: &Pool,
    wctx: WorkerCtx<'a>,
    batch: &[Arrival],
    per_arrival: &[(Arc<TupleMeta>, PhaseTiming)],
) -> (Vec<StepOutput>, Option<Arc<TupleMeta>>) {
    let n = batch.len();
    let sched = eviction_schedule(&eng.window, batch);
    let idx_of: FxHashMap<u64, usize> = batch
        .iter()
        .enumerate()
        .map(|(i, a)| (a.record.id, i))
        .collect();

    // Prologue: arrival 0's traverse has no pending insert (the previous
    // batch's final insert was applied at its `End`).
    let ev0 = scheduled_evict_meta(sched[0], &idx_of, per_arrival, &eng.metas);
    pool.send_step(None, ev0.as_ref(), &per_arrival[0].0);
    eng.metrics.er_barriers += 1;
    let (mut traverse_us, mut refine_us, mut merge_us, mut barrier_us) = (0u64, 0u64, 0u64, 0u64);
    let mut t0 = ter_obs::timer();
    let mut surfaced = pool.collect_surfaced();
    lap(t0, &mut traverse_us);
    lap(t0, &mut barrier_us);

    let mut outputs = Vec::with_capacity(n);
    for i in 0..n {
        let (meta, imp_timing) = &per_arrival[i];
        let er_start = Instant::now();

        // ---- expiry (the real push; the schedule must agree) ----
        t0 = ter_obs::timer();
        let mut retractions = Vec::new();
        let mut expired = Vec::new();
        let evicted = eng
            .window
            .push(batch[i].timestamp, batch[i].record.id)
            .and_then(|(_, old_id)| {
                expired.push(old_id);
                let (meta, removed) = eng.expire(old_id);
                retractions = removed;
                meta
            });
        debug_assert_eq!(
            evicted.as_ref().map(|m| m.id),
            sched[i],
            "eviction schedule diverged from the window"
        );
        lap(t0, &mut merge_us);

        // ---- candidate selection ----
        t0 = ter_obs::timer();
        let cands: Vec<Arc<TupleMeta>> =
            candidates::examined_candidates(meta, &surfaced, &eng.topical_ids, &eng.metas)
                .into_iter()
                .map(Arc::clone)
                .collect();
        let examined = cands.len() as u64;

        // ---- queue refine(i), then traverse(i+1), then wait once ----
        let fan_sent = if cands.len() >= eng.exec.refine_fanout_min {
            pool.send_refine(meta, &cands)
        } else {
            0
        };
        if i + 1 < n {
            let ev = scheduled_evict_meta(sched[i + 1], &idx_of, per_arrival, &eng.metas);
            pool.send_step(Some(meta), ev.as_ref(), &per_arrival[i + 1].0);
        }
        // A small candidate set refines here, on the driving thread,
        // overlapping the workers' traverse of i+1.
        let mut outcome = if fan_sent == 0 {
            merge_outcomes([refine_slice(&wctx, meta, &cands)])
        } else {
            eng.metrics.fanned_refines += 1;
            RefineOutcome::default()
        };
        if fan_sent > 0 || i + 1 < n {
            eng.metrics.er_barriers += 1;
        }
        lap(t0, &mut refine_us);
        if fan_sent > 0 {
            // FIFO per worker: its Refined(i) reply precedes its
            // Surfaced(i+1) reply, so this drain order is deterministic.
            t0 = ter_obs::timer();
            outcome = pool.collect_refined(fan_sent);
            lap(t0, &mut refine_us);
            lap(t0, &mut barrier_us);
        }
        if i + 1 < n {
            t0 = ter_obs::timer();
            surfaced = pool.collect_surfaced();
            lap(t0, &mut traverse_us);
            lap(t0, &mut barrier_us);
        }

        // ---- merge ----
        t0 = ter_obs::timer();
        let new_matches = eng.finalize_arrival(meta, examined, outcome);
        lap(t0, &mut merge_us);
        let mut step_timing = *imp_timing;
        step_timing.er += er_start.elapsed();
        eng.timing.accumulate(&step_timing);
        outputs.push(StepOutput {
            new_matches,
            retractions,
            expired,
            timing: step_timing,
        });
    }
    eng.metrics.overlapped_arrivals += n as u64;
    record_stage_batch(traverse_us, refine_us, merge_us, Some(barrier_us));
    (outputs, Some(Arc::clone(&per_arrival[n - 1].0)))
}

/// An engine with a live pool session attached (see
/// [`ShardedTerIdsEngine::with_pool`]). Drives batches through the
/// persistent workers; between batches the full state lives in the
/// engine, so state export/import and every read accessor work
/// mid-session.
pub struct PooledEngine<'s, 'a> {
    eng: &'s mut ShardedTerIdsEngine<'a>,
    pool: Option<Pool>,
}

impl<'a> PooledEngine<'_, 'a> {
    /// Read access to the underlying engine.
    pub fn engine(&self) -> &ShardedTerIdsEngine<'a> {
        self.eng
    }

    /// Mutable access to the underlying engine (the pool holds no engine
    /// state between batches, so any engine operation is safe here).
    pub fn engine_mut(&mut self) -> &mut ShardedTerIdsEngine<'a> {
        self.eng
    }

    /// [`ShardedTerIdsEngine::export_state`] pass-through.
    pub fn export_state(&self) -> EngineState {
        self.eng.export_state()
    }

    /// [`ShardedTerIdsEngine::import_state`] pass-through.
    pub fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        self.eng.import_state(state)
    }

    /// Phases 1–4 for one batch through the session's workers.
    fn step_batch_impl(&mut self, batch: &[Arrival]) -> Vec<StepOutput> {
        if batch.is_empty() {
            return Vec::new();
        }
        let batch_t0 = ter_obs::timer();
        ter_obs::OBS.engine_batches.inc();
        // Library mode: no outer driver owns a causal trace for this
        // batch, so it roots its own (keyed by the engine batch ordinal).
        // In daemon mode the serve step stage owns the trace and this is
        // a no-op.
        let self_rooted = ter_obs::trace::root_if_unattached(ter_obs::OBS.engine_batches.get());
        let eng = &mut *self.eng;
        let wctx = eng.worker_ctx();
        let outputs = match &self.pool {
            None => {
                // Inline fast path: same ops, same order, no pool.
                let t0 = ter_obs::timer();
                let per_arrival: Vec<(Arc<TupleMeta>, PhaseTiming)> = batch
                    .iter()
                    .map(|a| impute_one(&eng.imputer, eng.ctx, a))
                    .collect();
                let impute_us = ter_obs::OBS.engine_impute_micros.observe_since(t0);
                ter_obs::flight(
                    ter_obs::kind::IMPUTE,
                    ter_obs::OBS.engine_batches.get(),
                    batch.len() as u64,
                    0,
                    impute_us,
                );
                ter_obs::trace::add_current_elapsed(ter_obs::trace::kind::IMPUTE, impute_us);
                let owned: Vec<(usize, ShardGrid)> = eng.shards.drain(..).enumerate().collect();
                let mut workers = BatchWorkers::Inline {
                    shards: owned,
                    wctx,
                };
                let (outputs, pending) = drive_lockstep(eng, batch, &per_arrival, &mut workers);
                let BatchWorkers::Inline { mut shards, .. } = workers else {
                    unreachable!()
                };
                if let Some(meta) = pending {
                    apply_insert(&mut shards, eng.router, &meta);
                }
                eng.shards = shards.into_iter().map(|(_, g)| g).collect();
                outputs
            }
            Some(pool) => {
                eng.metrics.pooled_batches += 1;
                // ---- impute stage ----
                let t0 = ter_obs::timer();
                let per_arrival = if batch.len() == 1 {
                    vec![impute_one(&eng.imputer, eng.ctx, &batch[0])]
                } else {
                    pool.impute_batch(batch)
                };
                let impute_us = ter_obs::OBS.engine_impute_micros.observe_since(t0);
                ter_obs::flight(
                    ter_obs::kind::IMPUTE,
                    ter_obs::OBS.engine_batches.get(),
                    batch.len() as u64,
                    0,
                    impute_us,
                );
                ter_obs::trace::add_current_elapsed(ter_obs::trace::kind::IMPUTE, impute_us);
                // Workers own disjoint shard groups for the whole batch
                // (shard s → worker s mod T), so each cell's op sequence
                // is applied by exactly one worker, in arrival order —
                // identical to the monolithic grid.
                let shard_count = eng.shards.len();
                let threads = pool.len();
                let mut groups: Vec<Vec<(usize, ShardGrid)>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (sid, grid) in eng.shards.drain(..).enumerate() {
                    groups[sid % threads].push((sid, grid));
                }
                pool.begin(groups);
                let (outputs, pending) = if eng.exec.overlap {
                    drive_overlapped(eng, pool, wctx, batch, &per_arrival)
                } else {
                    let mut workers = BatchWorkers::Pool { pool, wctx };
                    drive_lockstep(eng, batch, &per_arrival, &mut workers)
                };
                eng.shards = pool.finish(pending, shard_count);
                outputs
            }
        };
        let batch_us = batch_t0.map_or(0, |t| t.elapsed().as_micros() as u64);
        ter_obs::flight(
            ter_obs::kind::BATCH,
            ter_obs::OBS.engine_batches.get(),
            batch.len() as u64,
            0,
            batch_us,
        );
        if self_rooted {
            ter_obs::trace::add_current_elapsed(ter_obs::trace::kind::STEP, batch_us);
            ter_obs::trace::end_current();
        }
        outputs
    }
}

impl ErProcessor for PooledEngine<'_, '_> {
    fn name(&self) -> &'static str {
        self.eng.name
    }

    fn process(&mut self, arrival: &Arrival) -> StepOutput {
        self.step_batch_impl(std::slice::from_ref(arrival))
            .pop()
            .expect("one output per arrival")
    }

    fn step_batch(&mut self, batch: &[Arrival]) -> Vec<StepOutput> {
        self.step_batch_impl(batch)
    }

    fn results(&self) -> &ResultSet {
        &self.eng.results
    }

    fn reported(&self) -> &FxHashSet<(u64, u64)> {
        &self.eng.reported
    }

    fn prune_stats(&self) -> PruneStats {
        self.eng.stats
    }

    fn timing(&self) -> PhaseTiming {
        self.eng.timing
    }

    fn stage_metrics(&self) -> StageMetrics {
        self.eng.metrics
    }
}

impl ErProcessor for ShardedTerIdsEngine<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn process(&mut self, arrival: &Arrival) -> StepOutput {
        self.step_batch(std::slice::from_ref(arrival))
            .pop()
            .expect("one output per arrival")
    }

    /// One batch through a transient pool session (the pool spins up and
    /// joins within the call). Long-lived consumers should hold a
    /// session open via [`ShardedTerIdsEngine::with_pool`] instead.
    fn step_batch(&mut self, batch: &[Arrival]) -> Vec<StepOutput> {
        if batch.is_empty() {
            return Vec::new();
        }
        self.with_pool(|pe| pe.step_batch_impl(batch))
    }

    fn results(&self) -> &ResultSet {
        &self.results
    }

    fn reported(&self) -> &FxHashSet<(u64, u64)> {
        &self.reported
    }

    fn prune_stats(&self) -> PruneStats {
        self.stats
    }

    fn timing(&self) -> PhaseTiming {
        self.timing
    }

    fn stage_metrics(&self) -> StageMetrics {
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_ids::TerIdsEngine;
    use ter_repo::{PivotConfig, Record, Repository, Schema};
    use ter_rules::DiscoveryConfig;
    use ter_stream::StreamSet;
    use ter_text::{Dictionary, KeywordSet};

    /// The same 2-stream scenario as the sequential engine's unit tests.
    fn scenario() -> (TerContext, StreamSet) {
        let schema = Schema::new(vec!["title", "tags"]);
        let mut dict = Dictionary::new();
        let repo_rows = [
            ("space cowboy adventure", "scifi western"),
            ("space cowboy adventure saga", "scifi western"),
            ("high school romance", "drama comedy"),
            ("high school romance club", "drama comedy"),
            ("cooking master", "comedy food"),
            ("idol music live", "music idol"),
        ];
        let repo_recs = repo_rows
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                Record::from_texts(&schema, 1000 + i as u64, &[Some(a), Some(b)], &mut dict)
            })
            .collect();
        let repo = Repository::from_records(schema.clone(), repo_recs);
        let keywords = KeywordSet::parse("scifi", &dict);
        let ctx = TerContext::build(
            repo,
            keywords,
            &PivotConfig::default(),
            &DiscoveryConfig {
                min_support: 2,
                min_constant_support: 2,
                ..DiscoveryConfig::default()
            },
            16,
        );
        let s0 = vec![
            Record::from_texts(
                &schema,
                1,
                &[Some("space cowboy adventure"), Some("scifi western")],
                &mut dict,
            ),
            Record::from_texts(
                &schema,
                3,
                &[Some("cooking master"), Some("comedy food")],
                &mut dict,
            ),
        ];
        let s1 = vec![
            Record::from_texts(
                &schema,
                2,
                &[Some("space cowboy adventure"), Some("scifi western")],
                &mut dict,
            ),
            Record::from_texts(
                &schema,
                4,
                &[Some("idol music live"), Some("music idol")],
                &mut dict,
            ),
        ];
        (ctx, StreamSet::new(vec![s0, s1]))
    }

    #[test]
    fn finds_the_obvious_match_in_one_batch() {
        let (ctx, streams) = scenario();
        let mut e = ShardedTerIdsEngine::new(
            &ctx,
            Params::default(),
            PruningMode::Full,
            ExecConfig::new(4, 2),
        );
        let outs = e.step_batch(&streams.arrivals());
        let all: Vec<(u64, u64)> = outs.iter().flat_map(|o| o.new_matches.clone()).collect();
        assert_eq!(all, vec![(1, 2)]);
        assert!(e.results().contains(1, 2));
        assert_eq!(e.window_len(), 4);
    }

    #[test]
    fn agrees_with_sequential_engine_across_batch_sizes() {
        let (ctx, streams) = scenario();
        let mut seq = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
        let mut seq_steps = Vec::new();
        for a in streams.arrivals() {
            let mut m = seq.process(&a).new_matches;
            m.sort_unstable();
            seq_steps.push(m);
        }
        for batch in 1..=5 {
            for threads in [1usize, 2] {
                for overlap in [false, true] {
                    let exec = ExecConfig::new(3, threads).with_overlap(overlap);
                    let mut par =
                        ShardedTerIdsEngine::new(&ctx, Params::default(), PruningMode::Full, exec);
                    let mut par_steps = Vec::new();
                    for chunk in streams.arrival_batches(batch) {
                        par_steps.extend(par.step_batch(&chunk).into_iter().map(|o| o.new_matches));
                    }
                    let tag = format!("batch {batch}, threads {threads}, overlap {overlap}");
                    assert_eq!(par_steps, seq_steps, "{tag}");
                    assert_eq!(par.prune_stats(), seq.prune_stats(), "{tag}");
                    assert_eq!(par.live_ids(), seq.live_ids(), "{tag}");
                }
            }
        }
    }

    /// A persistent pool session across several batches must be
    /// bit-identical to per-batch transient sessions, and must actually
    /// run pooled (the metrics say so).
    #[test]
    fn persistent_session_agrees_with_transient_batches() {
        let (ctx, streams) = scenario();
        let exec = ExecConfig::new(4, 2);
        let arrivals = streams.arrivals();

        let mut transient =
            ShardedTerIdsEngine::new(&ctx, Params::default(), PruningMode::Full, exec);
        let mut t_steps = Vec::new();
        for chunk in arrivals.chunks(2) {
            t_steps.extend(
                transient
                    .step_batch(chunk)
                    .into_iter()
                    .map(|o| o.new_matches),
            );
        }

        let mut pooled = ShardedTerIdsEngine::new(&ctx, Params::default(), PruningMode::Full, exec);
        let p_steps = pooled.with_pool(|pe| {
            let mut steps = Vec::new();
            for chunk in arrivals.chunks(2) {
                steps.extend(pe.step_batch(chunk).into_iter().map(|o| o.new_matches));
            }
            // State is fully materialized between batches mid-session.
            assert_eq!(pe.export_state(), pe.engine().export_state());
            steps
        });
        assert_eq!(p_steps, t_steps);
        assert_eq!(pooled.prune_stats(), transient.prune_stats());
        assert_eq!(pooled.export_state(), transient.export_state());
        assert_eq!(pooled.stage_metrics().pooled_batches, 2);
        assert!(pooled.stage_metrics().overlapped_arrivals >= 4);
    }

    /// The instrumented barrier claim: with every refine forced onto the
    /// pool, the lock-step drive pays exactly two barriers per arrival
    /// (traverse + refine), the overlapped drive at most one plus one
    /// prologue per batch.
    #[test]
    fn overlap_halves_the_barrier_count() {
        let (ctx, streams) = scenario();
        let arrivals = streams.arrivals();
        let base = ExecConfig {
            shards: 4,
            threads: 2,
            overlap: false,
            refine_fanout_min: 0, // always fan out (when candidates exist)
        };

        let mut lockstep =
            ShardedTerIdsEngine::new(&ctx, Params::default(), PruningMode::Full, base);
        lockstep.step_batch(&arrivals);
        let lm = lockstep.stage_metrics();
        assert_eq!(
            lm.er_barriers,
            arrivals.len() as u64 + lm.fanned_refines,
            "lock-step: one traverse barrier per arrival + one per fanned refine"
        );
        assert!(lm.fanned_refines > 0, "scenario exercises fanned refines");
        assert_eq!(lm.overlapped_arrivals, 0);

        let mut overlapped = ShardedTerIdsEngine::new(
            &ctx,
            Params::default(),
            PruningMode::Full,
            base.with_overlap(true),
        );
        overlapped.step_batch(&arrivals);
        let om = overlapped.stage_metrics();
        let batches = 1;
        assert!(
            om.er_barriers <= arrivals.len() as u64 + batches,
            "overlapped: at most one barrier per arrival plus one prologue per batch \
             (got {} for {} arrivals)",
            om.er_barriers,
            arrivals.len()
        );
        assert!(
            om.er_barriers < lm.er_barriers,
            "overlap must reduce barriers"
        );
        assert_eq!(om.overlapped_arrivals, arrivals.len() as u64);

        // And the outputs are still bit-identical.
        assert_eq!(overlapped.export_state(), lockstep.export_state());
    }

    #[test]
    fn expiry_matches_sequential_semantics() {
        let (ctx, streams) = scenario();
        let params = Params {
            window: 2,
            ..Params::default()
        };
        let mut e =
            ShardedTerIdsEngine::new(&ctx, params, PruningMode::Full, ExecConfig::new(2, 2));
        let arrivals = streams.arrivals();
        e.step_batch(&arrivals[..2]);
        assert!(e.results().contains(1, 2));
        e.step_batch(&arrivals[2..3]);
        assert!(!e.results().contains(1, 2), "pair must expire with tuple 1");
        assert!(e.reported().contains(&(1, 2)));
        assert_eq!(e.window_len(), 2);
    }

    /// A window smaller than the batch forces in-batch arrivals to expire
    /// before the batch ends — the eviction schedule must resolve their
    /// metadata from the batch itself, in both drive modes.
    #[test]
    fn in_batch_expiry_is_bit_identical_across_drives() {
        let (ctx, streams) = scenario();
        let params = Params {
            window: 1,
            ..Params::default()
        };
        let arrivals = streams.arrivals();
        let mut seq = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        for a in &arrivals {
            seq.process(a);
        }
        for overlap in [false, true] {
            let exec = ExecConfig::new(3, 2).with_overlap(overlap);
            let mut par = ShardedTerIdsEngine::new(&ctx, params, PruningMode::Full, exec);
            par.step_batch(&arrivals);
            assert_eq!(par.export_state(), seq.export_state(), "overlap {overlap}");
        }
    }

    #[test]
    fn timing_is_recorded() {
        let (ctx, streams) = scenario();
        let mut e = ShardedTerIdsEngine::new(
            &ctx,
            Params::default(),
            PruningMode::Full,
            ExecConfig::new(2, 2),
        );
        e.step_batch(&streams.arrivals());
        let t = e.timing();
        assert_eq!(t.arrivals, 4);
        assert!(t.total().as_nanos() > 0);
    }

    /// The sharded engine's exported state must be byte-for-byte the
    /// sequential engine's (same canonical representation, same per-cell
    /// entry order), and checkpoints must restore across engine kinds.
    #[test]
    fn state_is_engine_agnostic() {
        let (ctx, streams) = scenario();
        let params = Params {
            window: 3, // forces an eviction across the 4 arrivals
            ..Params::default()
        };
        let arrivals = streams.arrivals();
        let mut seq = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        for a in &arrivals {
            seq.process(a);
        }
        let mut par =
            ShardedTerIdsEngine::new(&ctx, params, PruningMode::Full, ExecConfig::new(4, 2));
        par.step_batch(&arrivals);
        let state = seq.export_state();
        assert_eq!(par.export_state(), state, "export representations differ");

        // Sequential checkpoint → sharded engine (different shard count).
        let mut restored =
            ShardedTerIdsEngine::new(&ctx, params, PruningMode::Full, ExecConfig::new(3, 1));
        restored.import_state(&state).unwrap();
        assert_eq!(restored.export_state(), state);
        assert_eq!(restored.live_ids(), seq.live_ids());

        // Sharded checkpoint → sequential engine.
        let mut back = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        back.import_state(&par.export_state()).unwrap();
        assert_eq!(back.export_state(), state);
    }

    #[test]
    fn import_rejects_mismatched_window() {
        let (ctx, streams) = scenario();
        let exec = ExecConfig::new(2, 1);
        let mut e = ShardedTerIdsEngine::new(&ctx, Params::default(), PruningMode::Full, exec);
        e.step_batch(&streams.arrivals());
        let state = e.export_state();
        let mut other = ShardedTerIdsEngine::new(
            &ctx,
            Params {
                window: 9,
                ..Params::default()
            },
            PruningMode::Full,
            exec,
        );
        assert!(other.import_state(&state).is_err());
        assert_eq!(other.window_len(), 0);
    }

    #[test]
    fn grid_load_is_spread_across_shards() {
        let (ctx, streams) = scenario();
        let mut e = ShardedTerIdsEngine::new(
            &ctx,
            Params::default(),
            PruningMode::Full,
            ExecConfig::new(8, 2),
        );
        e.step_batch(&streams.arrivals());
        let counts = e.shard_entry_counts();
        assert_eq!(counts.len(), 8);
        assert!(counts.iter().sum::<usize>() > 0);
    }
}
