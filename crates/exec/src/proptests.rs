//! Property tests for the shard router and the deterministic merge.
//!
//! Three guarantees underpin the engine-level parity proof:
//!
//! 1. the router partitions cells — every cell (hence every cell of every
//!    tuple's region) routes to exactly one shard;
//! 2. replaying a sliding-window insert/evict history against any shard
//!    count leaves the union of shard grids cell-for-cell equal to the
//!    monolithic grid — retained vs expired tuples relative to the window
//!    bounds never depend on the shard count;
//! 3. the merged output is a deterministic function of the input contents
//!    and arrival order — never of worker count, slice partition, or
//!    completion order.

use proptest::prelude::*;

use ter_index::{Aggregate, Rect, RegionGrid};
use ter_text::Interval;

use crate::merge::{merge_outcomes, merge_surfaced, RefineOutcome};
use crate::router::ShardRouter;

#[derive(Debug, Clone, PartialEq)]
struct Count(usize);
impl Aggregate for Count {
    fn merge(&mut self, o: &Self) {
        self.0 += o.0;
    }
}

fn arb_rect(dim: usize) -> impl Strategy<Value = Rect> {
    proptest::collection::vec(
        ((0u32..=100), (0u32..=100)).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            Interval::new(lo as f64 / 100.0, hi as f64 / 100.0)
        }),
        dim,
    )
    .prop_map(Rect::new)
}

/// Sorted `(cell key, payload)` pairs of one or more grids — the exact
/// placement, comparable across shardings.
fn placement(grids: &[RegionGrid<u64, Count>]) -> Vec<(Vec<u16>, u64)> {
    let mut out: Vec<(Vec<u16>, u64)> = grids
        .iter()
        .flat_map(|g| {
            g.iter_cells().flat_map(|(key, entries)| {
                entries
                    .iter()
                    .map(move |e| (key.to_vec(), e.payload))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: for every cell key and shard count, exactly one shard
    /// owns the cell, and the owner is a pure function of the key.
    #[test]
    fn every_cell_routes_to_exactly_one_shard(
        key in proptest::collection::vec(0u16..64, 1..5),
        shards in 1usize..=8,
    ) {
        let router = ShardRouter::new(shards);
        let owners: Vec<usize> =
            (0..shards).filter(|&s| router.owns(s, &key)).collect();
        prop_assert_eq!(owners.len(), 1, "key {:?} owned by {:?}", key, owners);
        prop_assert_eq!(owners[0], router.shard_of(&key));
        prop_assert_eq!(router.shard_of(&key), router.shard_of(&key));
    }

    /// Property 2: replaying a sliding-window history (insert the arriving
    /// region, evict the one leaving the window) against S shard grids
    /// leaves their union cell-for-cell identical to the monolithic grid,
    /// for every S — so which tuples are retained vs expired relative to
    /// the window bounds never depends on the shard count.
    #[test]
    fn sharded_window_churn_equals_monolithic(
        rects in proptest::collection::vec(arb_rect(2), 1..24),
        window in 1usize..=6,
        cells in 2u16..=6,
    ) {
        let mono_placement = {
            let mut mono: RegionGrid<u64, Count> = RegionGrid::new(2, cells);
            for (i, r) in rects.iter().enumerate() {
                mono.insert(r.clone(), i as u64, Count(1));
                if i >= window {
                    let old = i - window;
                    mono.evict(&rects[old], &(old as u64));
                }
            }
            placement(std::slice::from_ref(&mono))
        };
        for shards in [1usize, 2, 3, 4, 8] {
            let router = ShardRouter::new(shards);
            let mut grids: Vec<RegionGrid<u64, Count>> =
                (0..shards).map(|_| RegionGrid::new(2, cells)).collect();
            for (i, r) in rects.iter().enumerate() {
                for (s, g) in grids.iter_mut().enumerate() {
                    g.insert_where(r.clone(), i as u64, Count(1), |key| router.owns(s, key));
                }
                if i >= window {
                    let old = i - window;
                    for g in grids.iter_mut() {
                        g.evict(&rects[old], &(old as u64));
                    }
                }
            }
            prop_assert_eq!(
                placement(&grids),
                mono_placement.clone(),
                "shard count {}",
                shards
            );
        }
    }

    /// Property 3: the merged refine outcome is a deterministic function
    /// of the partial results' contents — re-partitioning the same pairs
    /// into different slices, in a different order, merges identically.
    #[test]
    fn merged_output_is_deterministic_in_input_order(
        pairs in proptest::collection::vec((0u64..50, 50u64..100), 0..40),
        split in 1usize..=5,
        rotate in 0usize..5,
    ) {
        let make_parts = |chunk: usize, rot: usize| -> Vec<RefineOutcome> {
            let mut parts: Vec<RefineOutcome> = pairs
                .chunks(chunk.max(1))
                .map(|c| RefineOutcome {
                    sim: c.len() as u64,
                    prob: 0,
                    instance: 1,
                    matches: c.to_vec(),
                })
                .collect();
            if !parts.is_empty() {
                let mid = rot % parts.len();
                parts.rotate_left(mid);
            }
            parts
        };
        let baseline = merge_outcomes(make_parts(pairs.len().max(1), 0));
        let other = merge_outcomes(make_parts(split, rotate));
        prop_assert_eq!(baseline.matches, other.matches);
        prop_assert_eq!(baseline.sim + baseline.instance > 0, !pairs.is_empty());

        // Surfaced-id union: partition- and order-insensitive too.
        let ids: Vec<u64> = pairs.iter().map(|&(a, _)| a).collect();
        let mut one: Vec<u64> = merge_surfaced(std::slice::from_ref(&ids))
            .into_iter()
            .collect();
        let chunked: Vec<Vec<u64>> =
            ids.chunks(split.max(1)).rev().map(<[u64]>::to_vec).collect();
        let mut many: Vec<u64> = merge_surfaced(&chunked).into_iter().collect();
        one.sort_unstable();
        many.sort_unstable();
        prop_assert_eq!(one, many);
    }
}
