//! Cell → shard routing.
//!
//! The logical ER-grid is partitioned across `S` shards by hashing grid
//! cell keys: every cell is owned by exactly one shard, and a tuple's
//! region is materialized cell-by-cell in whichever shards own its cells
//! (mirroring §5.2's "insert into every intersecting cell", just spread
//! over shards). Because the routing is a pure function of the cell key
//! and the shard count, replaying the same per-arrival insert/evict
//! sequence against any shard count produces the same per-cell entry and
//! aggregate history as the monolithic grid — the foundation of the
//! engine-level bit-for-bit parity guarantee (property-tested in
//! `proptests.rs`).

use std::hash::Hasher;

use ter_text::fxhash::FxHasher;

/// Deterministic partitioner of grid cells across `S` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// Creates a router over `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        Self { shards }
    }

    /// Number of shards `S`.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning grid cell `key` — a pure function of the cell key
    /// and the shard count, so every cell routes to exactly one shard.
    pub fn shard_of(&self, key: &[u16]) -> usize {
        let mut h = FxHasher::default();
        for &k in key {
            h.write_u32(k as u32);
        }
        (h.finish() % self.shards as u64) as usize
    }

    /// Whether shard `shard` owns cell `key`.
    pub fn owns(&self, shard: usize, key: &[u16]) -> bool {
        self.shard_of(key) == shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let r = ShardRouter::new(1);
        for key in [&[0u16, 0][..], &[3, 7], &[65535, 0]] {
            assert_eq!(r.shard_of(key), 0);
            assert!(r.owns(0, key));
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in 1..=8 {
            let r = ShardRouter::new(shards);
            for a in 0..16u16 {
                for b in 0..16u16 {
                    let s = r.shard_of(&[a, b]);
                    assert!(s < shards);
                    assert_eq!(s, r.shard_of(&[a, b]));
                }
            }
        }
    }

    #[test]
    fn multiple_shards_are_actually_used() {
        let r = ShardRouter::new(4);
        let mut seen = [false; 4];
        for a in 0..32u16 {
            for b in 0..32u16 {
                seen[r.shard_of(&[a, b])] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "unused shard: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardRouter::new(0);
    }
}
