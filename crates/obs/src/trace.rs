//! Causal per-batch tracing: one span tree per ingest batch, threaded
//! from socket read to ack write-back, with tail-based sampling and a
//! critical-path analyzer on top.
//!
//! # Design
//!
//! The hot path never allocates. Spans for in-flight batches live in a
//! fixed table of [`SLOTS`] slots of plain `AtomicU64` words (relaxed
//! orderings, like the registry): slot `seq % SLOTS` holds, per span
//! [`kind`], a start timestamp and an accumulated duration. Layers that
//! know their batch sequence ([`add`]) write straight into the slot;
//! layers that run *inside* the engine step and don't carry the
//! sequence ([`add_current`]) route through a thread-agnostic
//! "current batch" register set by the step driver. A stage that runs
//! several laps per batch (barrier waits, multi-subscriber notify
//! fan-out) accumulates — `dur` is a `fetch_add`.
//!
//! Shared spans: one group-commit fsync covers many batches, so
//! [`fsync_covering`] writes the *same* fsync span into every covered
//! batch's slot and stamps how many batches shared it — the analyzer
//! amortizes the exposed time by that count.
//!
//! A batch's trace closes on [`end`] (ack written back, or the step
//! returning in library mode): the slot is materialized into an owned
//! [`Trace`], the slot freed, and the trace offered to the **tail-based
//! sampler** — every completion folds into the cumulative
//! [`CriticalPath`] attribution table, but only the `K` slowest traces
//! per window (plus every trace that overlapped a PANIC/Busy/Lagged
//! anomaly) are retained in a bounded buffer for inspection.
//!
//! Everything is gated on the same [`crate::set_enabled`] kill switch as
//! the metrics layer, and carries the same bit-parity obligation: spans
//! are write-only from the compute path and never feed back into a
//! decision.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Span kinds: the fixed vocabulary of the per-batch span tree. The
/// numeric values index the slot arrays, so they are dense from 0.
pub mod kind {
    /// The whole batch, socket read to ack write-back (the tree root).
    pub const ROOT: u8 = 0;
    /// Frontend read + parse (+ the go-back-N sequence gate).
    pub const FRONTEND: u8 = 1;
    /// Go-back-N gate admission marker (zero-duration; rejected frames
    /// never start a trace).
    pub const GATE: u8 = 2;
    /// Wait in the bounded ordered queue before the step stage picks
    /// the batch up.
    pub const QUEUE_WAIT: u8 = 3;
    /// WAL `append_nosync` (the unsynced half of group commit).
    pub const WAL: u8 = 4;
    /// The covering group-commit fsync — shared: the same span is
    /// written into every batch the fsync covered.
    pub const FSYNC: u8 = 5;
    /// The engine step (parent of the stage spans).
    pub const STEP: u8 = 6;
    /// Impute stage (child of [`STEP`]).
    pub const IMPUTE: u8 = 7;
    /// Traverse stage (child of [`STEP`]).
    pub const TRAVERSE: u8 = 8;
    /// Refine stage (child of [`STEP`]).
    pub const REFINE: u8 = 9;
    /// Merge stage (child of [`STEP`]).
    pub const MERGE: u8 = 10;
    /// Shard-barrier waits inside traverse/refine (child of [`STEP`];
    /// the stage laps already contain this time — the analyzer
    /// subtracts it back out of compute).
    pub const BARRIER: u8 = 11;
    /// Standing-query notify fan-out (accumulated over subscribers).
    pub const NOTIFY: u8 = 12;
    /// Ack release → reply buffered on the session writer.
    pub const WRITE_BACK: u8 = 13;
    /// Number of span kinds (slot array width).
    pub const NKINDS: usize = 14;

    /// Parent kind of each span kind ([`ROOT`] is its own parent).
    pub const PARENT: [u8; NKINDS] = [
        ROOT, ROOT, ROOT, ROOT, ROOT, ROOT, ROOT, STEP, STEP, STEP, STEP, STEP, ROOT, ROOT,
    ];

    /// Stable text name (dump format + CLI).
    pub fn name(k: u8) -> &'static str {
        match k {
            ROOT => "batch",
            FRONTEND => "frontend",
            GATE => "gate",
            QUEUE_WAIT => "queue_wait",
            WAL => "wal",
            FSYNC => "fsync",
            STEP => "step",
            IMPUTE => "impute",
            TRAVERSE => "traverse",
            REFINE => "refine",
            MERGE => "merge",
            BARRIER => "barrier",
            NOTIFY => "notify",
            WRITE_BACK => "write_back",
            _ => "unknown",
        }
    }

    /// Inverse of [`name`] (`None` for unknown text).
    pub fn from_name(s: &str) -> Option<u8> {
        (0..NKINDS as u8).find(|&k| name(k) == s)
    }
}

/// One completed span, owned form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The batch this span belongs to.
    pub batch_seq: u64,
    /// A [`kind`] constant.
    pub kind: u8,
    /// The parent span's kind ([`kind::PARENT`]).
    pub parent: u8,
    /// Start, microseconds since the observability epoch.
    pub start: u64,
    /// Accumulated duration, microseconds.
    pub dur: u64,
}

/// One completed per-batch trace, owned form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The batch sequence this trace followed.
    pub batch_seq: u64,
    /// Root start, microseconds since the observability epoch.
    pub start: u64,
    /// End-to-end duration, microseconds.
    pub dur: u64,
    /// How many batches shared this batch's covering fsync (0 when the
    /// batch never saw an fsync span).
    pub covered: u64,
    /// Whether a PANIC/Busy/Lagged flight event landed inside this
    /// trace's lifetime — anomalous traces are always retained.
    pub anomaly: bool,
    /// The spans, root first, then kind order.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Duration of this trace's `k`-kind span (0 when absent).
    pub fn span_dur(&self, k: u8) -> u64 {
        self.spans.iter().find(|s| s.kind == k).map_or(0, |s| s.dur)
    }
}

// ---------------------------------------------------------------------
// Critical-path attribution
// ---------------------------------------------------------------------

/// The per-segment attribution table: end-to-end latency of one trace
/// (or the fold over many) split into *exclusive* segments that sum to
/// exactly `total_micros`.
///
/// Segment math per trace: stage compute is the stage laps minus the
/// barrier waits they contain; fsync-exposed is the covering fsync's
/// duration amortized over the batches it covered (group commit's whole
/// point is that the other `covered - 1` batches don't pay it); each
/// segment is then clamped so the running sum never exceeds the
/// measured end-to-end duration, and whatever the spans did not explain
/// lands in `other_micros`. The table is therefore a true partition:
/// `segment_sum() == total_micros` by construction, and honesty is
/// checked by comparing `total_micros` against independently measured
/// wall time (fig18 asserts agreement within 5%).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Traces folded into this table.
    pub traces: u64,
    /// Summed end-to-end trace duration, microseconds.
    pub total_micros: u64,
    /// Frontend read + parse + gate.
    pub frontend_micros: u64,
    /// Gate admission (zero-duration marker today).
    pub gate_micros: u64,
    /// Bounded ordered-queue wait.
    pub queue_wait_micros: u64,
    /// Engine stage compute (impute + traverse + refine + merge, barrier
    /// waits excluded).
    pub compute_micros: u64,
    /// Shard-barrier waits.
    pub barrier_micros: u64,
    /// WAL append (unsynced).
    pub wal_micros: u64,
    /// Covering-fsync time amortized per covered batch.
    pub fsync_exposed_micros: u64,
    /// Standing-query notify fan-out.
    pub notify_micros: u64,
    /// Ack release → reply buffered.
    pub write_back_micros: u64,
    /// End-to-end time the spans did not explain (scheduling, channel
    /// hops, pool overhead).
    pub other_micros: u64,
}

/// Segment labels, in fold order (everything except `traces` and
/// `total_micros`).
pub const SEGMENTS: [&str; 10] = [
    "frontend",
    "gate",
    "queue_wait",
    "compute",
    "barrier",
    "wal",
    "fsync_exposed",
    "notify",
    "write_back",
    "other",
];

impl CriticalPath {
    pub const ZERO: CriticalPath = CriticalPath {
        traces: 0,
        total_micros: 0,
        frontend_micros: 0,
        gate_micros: 0,
        queue_wait_micros: 0,
        compute_micros: 0,
        barrier_micros: 0,
        wal_micros: 0,
        fsync_exposed_micros: 0,
        notify_micros: 0,
        write_back_micros: 0,
        other_micros: 0,
    };

    /// The attribution of a single trace.
    pub fn of(trace: &Trace) -> Self {
        let mut cp = Self::ZERO;
        cp.fold(trace);
        cp
    }

    /// Folds one trace into the table (see the type docs for the
    /// segment math).
    pub fn fold(&mut self, t: &Trace) {
        let fsync = t.span_dur(kind::FSYNC);
        let fsync_exposed = if t.covered > 1 {
            fsync / t.covered
        } else {
            fsync
        };
        let stages = t.span_dur(kind::IMPUTE)
            + t.span_dur(kind::TRAVERSE)
            + t.span_dur(kind::REFINE)
            + t.span_dur(kind::MERGE);
        // The traverse/refine laps include the barrier waits; count the
        // wait once, under its own segment.
        let barrier = t.span_dur(kind::BARRIER).min(stages);
        let compute = stages - barrier;
        let mut left = t.dur;
        let mut take = |want: u64| {
            let got = want.min(left);
            left -= got;
            got
        };
        self.frontend_micros += take(t.span_dur(kind::FRONTEND));
        self.gate_micros += take(t.span_dur(kind::GATE));
        self.queue_wait_micros += take(t.span_dur(kind::QUEUE_WAIT));
        self.compute_micros += take(compute);
        self.barrier_micros += take(barrier);
        self.wal_micros += take(t.span_dur(kind::WAL));
        self.fsync_exposed_micros += take(fsync_exposed);
        self.notify_micros += take(t.span_dur(kind::NOTIFY));
        self.write_back_micros += take(t.span_dur(kind::WRITE_BACK));
        self.other_micros += left;
        self.traces += 1;
        self.total_micros += t.dur;
    }

    /// `(label, micros)` for every segment, in [`SEGMENTS`] order.
    pub fn segments(&self) -> [(&'static str, u64); 10] {
        [
            ("frontend", self.frontend_micros),
            ("gate", self.gate_micros),
            ("queue_wait", self.queue_wait_micros),
            ("compute", self.compute_micros),
            ("barrier", self.barrier_micros),
            ("wal", self.wal_micros),
            ("fsync_exposed", self.fsync_exposed_micros),
            ("notify", self.notify_micros),
            ("write_back", self.write_back_micros),
            ("other", self.other_micros),
        ]
    }

    /// Sum of every segment — equals `total_micros` for any table built
    /// by [`CriticalPath::fold`].
    pub fn segment_sum(&self) -> u64 {
        self.segments().iter().map(|(_, v)| v).sum()
    }

    /// Field-wise difference against an earlier snapshot of the same
    /// cumulative table (saturating — safe across a [`reset`]).
    pub fn delta(&self, prev: &CriticalPath) -> CriticalPath {
        CriticalPath {
            traces: self.traces.saturating_sub(prev.traces),
            total_micros: self.total_micros.saturating_sub(prev.total_micros),
            frontend_micros: self.frontend_micros.saturating_sub(prev.frontend_micros),
            gate_micros: self.gate_micros.saturating_sub(prev.gate_micros),
            queue_wait_micros: self
                .queue_wait_micros
                .saturating_sub(prev.queue_wait_micros),
            compute_micros: self.compute_micros.saturating_sub(prev.compute_micros),
            barrier_micros: self.barrier_micros.saturating_sub(prev.barrier_micros),
            wal_micros: self.wal_micros.saturating_sub(prev.wal_micros),
            fsync_exposed_micros: self
                .fsync_exposed_micros
                .saturating_sub(prev.fsync_exposed_micros),
            notify_micros: self.notify_micros.saturating_sub(prev.notify_micros),
            write_back_micros: self
                .write_back_micros
                .saturating_sub(prev.write_back_micros),
            other_micros: self.other_micros.saturating_sub(prev.other_micros),
        }
    }
}

// ---------------------------------------------------------------------
// The pending-span table (the allocation-free hot path)
// ---------------------------------------------------------------------

/// In-flight slot count. Far above any real in-flight batch count (the
/// daemon's queue bound and pipeline windows are single digits); a
/// sequence wrapping onto a stale abandoned slot simply overwrites it.
const SLOTS: usize = 64;

struct Slot {
    /// `batch_seq + 1`; 0 = free.
    seq: AtomicU64,
    /// Batches sharing this batch's covering fsync.
    covered: AtomicU64,
    start: [AtomicU64; kind::NKINDS],
    dur: [AtomicU64; kind::NKINDS],
}

impl Slot {
    const fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            covered: AtomicU64::new(0),
            start: [const { AtomicU64::new(0) }; kind::NKINDS],
            dur: [const { AtomicU64::new(0) }; kind::NKINDS],
        }
    }
}

static PENDING: [Slot; SLOTS] = [const { Slot::new() }; SLOTS];

/// The step driver's current batch (`seq + 1`; 0 = none) — the route by
/// which code that doesn't carry a batch sequence (stage kernels,
/// notify fan-out) reaches the right slot.
static CURRENT: AtomicU64 = AtomicU64::new(0);

/// Epoch-micros stamp of the last anomalous flight event (PANIC, Busy
/// backpressure, subscriber shed); 0 = none yet. Written by
/// [`crate::flight`].
static ANOMALY: AtomicU64 = AtomicU64::new(0);

fn slot_for(seq: u64) -> &'static Slot {
    &PENDING[(seq % SLOTS as u64) as usize]
}

fn enabled() -> bool {
    crate::enabled()
}

/// Microseconds since the observability epoch when tracing is enabled,
/// 0 (free — no clock read) when not. The layers stamp timestamps with
/// this so a disabled run never touches the clock.
pub fn now() -> u64 {
    if enabled() {
        // The epoch itself is instant 0; never confuse "at the epoch"
        // with "tracing off".
        crate::epoch_micros().max(1)
    } else {
        0
    }
}

/// Called by [`crate::flight`] when an anomalous event (panic,
/// backpressure rejection, subscriber shed) is recorded.
pub(crate) fn note_anomaly() {
    ANOMALY.store(crate::epoch_micros().max(1), Relaxed);
}

/// Opens the trace for batch `seq`, rooted at `start_us` (a [`now`]
/// stamp — pass the frontend receive time to charge queueing
/// upstream). Overwrites whatever stale abandoned trace occupied the
/// slot.
pub fn begin(seq: u64, start_us: u64) {
    if !enabled() || start_us == 0 {
        return;
    }
    let slot = slot_for(seq);
    slot.seq.store(seq + 1, Relaxed);
    slot.covered.store(0, Relaxed);
    for k in 0..kind::NKINDS {
        slot.start[k].store(0, Relaxed);
        slot.dur[k].store(0, Relaxed);
    }
    slot.start[kind::ROOT as usize].store(start_us, Relaxed);
}

/// Records (or accumulates into) batch `seq`'s span of `k`: the start
/// sticks on first write, the duration accumulates. No-op when the slot
/// is not tracing `seq` — a layer fed outside a traced batch (library
/// WAL use, recovery replay) costs one relaxed load.
pub fn add(seq: u64, k: u8, start_us: u64, dur_us: u64) {
    if !enabled() {
        return;
    }
    let slot = slot_for(seq);
    if slot.seq.load(Relaxed) != seq + 1 {
        return;
    }
    let ki = k as usize;
    if slot.start[ki].load(Relaxed) == 0 {
        slot.start[ki].store(start_us.max(1), Relaxed);
    }
    slot.dur[ki].fetch_add(dur_us, Relaxed);
}

/// [`add`] with the start back-computed as `now - dur_us` — for layers
/// that timed themselves with [`crate::timer`].
pub fn add_elapsed(seq: u64, k: u8, dur_us: u64) {
    if !enabled() {
        return;
    }
    add(
        seq,
        k,
        crate::epoch_micros().saturating_sub(dur_us).max(1),
        dur_us,
    );
}

/// Marks batch `seq` as the step driver's current batch.
pub fn set_current(seq: u64) {
    if enabled() {
        CURRENT.store(seq + 1, Relaxed);
    }
}

/// Clears the current-batch register.
pub fn clear_current() {
    CURRENT.store(0, Relaxed);
}

/// The current batch sequence, if a step is driving one.
pub fn current() -> Option<u64> {
    CURRENT.load(Relaxed).checked_sub(1)
}

/// [`add`] against the current batch (no-op without one).
pub fn add_current(k: u8, start_us: u64, dur_us: u64) {
    if let Some(seq) = current() {
        add(seq, k, start_us, dur_us);
    }
}

/// [`add_elapsed`] against the current batch (no-op without one).
pub fn add_current_elapsed(k: u8, dur_us: u64) {
    if let Some(seq) = current() {
        add_elapsed(seq, k, dur_us);
    }
}

/// Library-mode self-rooting: when no outer driver owns a trace (no
/// current batch), open one for `seq` and claim the register. Returns
/// whether this call rooted — the caller that rooted must also
/// [`end_current`]. In daemon mode the serve step stage owns the trace
/// and this is a no-op.
pub fn root_if_unattached(seq: u64) -> bool {
    if !enabled() || current().is_some() {
        return false;
    }
    begin(seq, now());
    set_current(seq);
    true
}

/// Ends the current batch's trace (the self-rooted library path).
pub fn end_current() {
    if let Some(seq) = current() {
        clear_current();
        end(seq, now());
    }
}

/// Writes the shared covering-fsync span into every batch in
/// `[first_seq, first_seq + covered)` — one fsync, linked from every
/// batch it made durable.
pub fn fsync_covering(first_seq: u64, covered: u64, dur_us: u64) {
    if !enabled() || covered == 0 {
        return;
    }
    let start = crate::epoch_micros().saturating_sub(dur_us).max(1);
    for seq in first_seq..first_seq.saturating_add(covered) {
        add(seq, kind::FSYNC, start, dur_us);
        let slot = slot_for(seq);
        if slot.seq.load(Relaxed) == seq + 1 {
            slot.covered.store(covered, Relaxed);
        }
    }
}

/// Abandons batch `seq`'s trace without retaining it (connection died
/// before the ack, commit error).
pub fn abandon(seq: u64) {
    let slot = slot_for(seq);
    let _ = slot.seq.compare_exchange(seq + 1, 0, Relaxed, Relaxed);
}

/// Closes batch `seq`'s trace at `end_us`: materializes the slot into
/// an owned [`Trace`], frees the slot, folds the trace into the
/// cumulative attribution table, and offers it to the tail sampler. An
/// open write-back span is closed at `end_us` (write-back *is* the last
/// segment — its end is the trace's end).
pub fn end(seq: u64, end_us: u64) {
    if !enabled() || end_us == 0 {
        return;
    }
    let slot = slot_for(seq);
    if slot.seq.load(Relaxed) != seq + 1 {
        return;
    }
    let wb = kind::WRITE_BACK as usize;
    let wb_start = slot.start[wb].load(Relaxed);
    if wb_start != 0 && slot.dur[wb].load(Relaxed) == 0 {
        slot.dur[wb].store(end_us.saturating_sub(wb_start), Relaxed);
    }
    let root_start = slot.start[kind::ROOT as usize].load(Relaxed);
    let mut spans = Vec::with_capacity(kind::NKINDS);
    spans.push(Span {
        batch_seq: seq,
        kind: kind::ROOT,
        parent: kind::ROOT,
        start: root_start,
        dur: end_us.saturating_sub(root_start),
    });
    for k in 1..kind::NKINDS {
        let start = slot.start[k].load(Relaxed);
        let dur = slot.dur[k].load(Relaxed);
        if start == 0 && dur == 0 {
            continue;
        }
        spans.push(Span {
            batch_seq: seq,
            kind: k as u8,
            parent: kind::PARENT[k],
            start,
            dur,
        });
    }
    let covered = slot.covered.load(Relaxed);
    slot.seq.store(0, Relaxed);
    let anomaly_ts = ANOMALY.load(Relaxed);
    let trace = Trace {
        batch_seq: seq,
        start: root_start,
        dur: end_us.saturating_sub(root_start),
        covered,
        anomaly: anomaly_ts != 0 && anomaly_ts >= root_start && anomaly_ts <= end_us,
        spans,
    };
    sampler()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .complete(trace);
}

// ---------------------------------------------------------------------
// Tail-based sampler
// ---------------------------------------------------------------------

/// Completions per sampling window.
const WINDOW: usize = 64;
/// Slowest traces retained per window (anomalous traces ride along on
/// top of this).
const KEEP_PER_WINDOW: usize = 8;
/// Bound on the retained buffer; oldest retained traces fall off.
const RETAINED_CAP: usize = 256;

struct Sampler {
    /// The current (possibly partial) window of completions.
    window: Vec<Trace>,
    /// Survivors of closed windows, oldest first.
    retained: VecDeque<Trace>,
    /// Cumulative attribution over *every* completion (not just the
    /// retained tail).
    attr: CriticalPath,
}

impl Sampler {
    const fn new() -> Self {
        Sampler {
            window: Vec::new(),
            retained: VecDeque::new(),
            attr: CriticalPath::ZERO,
        }
    }

    fn complete(&mut self, trace: Trace) {
        self.attr.fold(&trace);
        self.window.push(trace);
        if self.window.len() >= WINDOW {
            let keep = select(&self.window);
            for (i, trace) in self.window.drain(..).enumerate() {
                if keep[i] {
                    if self.retained.len() >= RETAINED_CAP {
                        self.retained.pop_front();
                    }
                    self.retained.push_back(trace);
                }
            }
        }
    }
}

/// The tail-sampling policy over one window: the `K` slowest plus every
/// anomalous trace.
fn select(window: &[Trace]) -> Vec<bool> {
    let mut order: Vec<usize> = (0..window.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(window[i].dur));
    let mut keep = vec![false; window.len()];
    for &i in order.iter().take(KEEP_PER_WINDOW) {
        keep[i] = true;
    }
    for (i, t) in window.iter().enumerate() {
        if t.anomaly {
            keep[i] = true;
        }
    }
    keep
}

static SAMPLER: Mutex<Sampler> = Mutex::new(Sampler::new());

fn sampler() -> &'static Mutex<Sampler> {
    &SAMPLER
}

/// The cumulative attribution table plus the retained traces (closed
/// windows' survivors, then the current partial window filtered by the
/// same policy), oldest first. Short runs that never fill a window
/// still surface their tail.
pub fn snapshot() -> (CriticalPath, Vec<Trace>) {
    let s = sampler()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut traces: Vec<Trace> = s.retained.iter().cloned().collect();
    let keep = select(&s.window);
    traces.extend(
        s.window
            .iter()
            .enumerate()
            .filter(|(i, _)| keep[*i])
            .map(|(_, t)| t.clone()),
    );
    (s.attr.clone(), traces)
}

/// Clears every pending slot, the sampler, and the anomaly stamp
/// (tests/benches only — wired into [`crate::reset`]).
pub fn reset() {
    for slot in &PENDING {
        slot.seq.store(0, Relaxed);
    }
    CURRENT.store(0, Relaxed);
    ANOMALY.store(0, Relaxed);
    *sampler()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner()) = Sampler::new();
}
