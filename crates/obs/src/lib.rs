//! `ter_obs`: unified observability for every TER-iDS layer — a
//! lock-light metric registry plus a bounded flight recorder of
//! structured trace events.
//!
//! # Design constraints
//!
//! The engine's parity guarantee (sharded ≡ sequential, bit-for-bit)
//! means instrumentation must never feed back into computation: every
//! metric here is write-only from the hot path's point of view.
//! Counters and gauges are single `AtomicU64`s updated with relaxed
//! ordering; histograms are 64 fixed log₂ buckets of `AtomicU64` (one
//! relaxed add per observation, p50/p95/p99 derivable from the buckets
//! at read time). Nothing on the hot path allocates, locks, or branches
//! on metric *values*. The only mutex in the crate guards the flight
//! recorder's ring buffer, and both timing capture ([`timer`]) and event
//! recording ([`flight`]) collapse to a single relaxed load when the
//! global enable flag is off — which is how the overhead-guard bench
//! measures the metrics-off baseline.
//!
//! # Surfaces
//!
//! * [`snapshot`] — the full registry as owned [`MetricRow`]s (the
//!   `MetricsDump` wire verb's body);
//! * [`flight_snapshot`] — the ring's events, oldest → newest;
//! * [`render`] / [`parse_dump`] — a Prometheus-style text exposition
//!   (metric lines, histogram `_count`/`_sum`/`_p*`/`_bucket{le=..}`
//!   lines, flight events as `# flight` comment lines) and its strict
//!   parser, used by the CLI, the dump files, and the crash tests;
//! * [`set_dump_path`] + [`dump_now`] — the `--metrics-text` hook: the
//!   daemon dumps at checkpoint cadence, on shutdown, and on a step
//!   panic, so a SIGKILL post-mortem always has a recent exposition
//!   written atomically (tmp + rename — a kill mid-dump leaves the
//!   previous complete file, never a torn one).

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

pub mod trace;

/// Flight-recorder ring capacity (events). Old events are overwritten;
/// the snapshot always holds the newest `FLIGHT_CAPACITY`.
pub const FLIGHT_CAPACITY: usize = 4096;

/// Histogram bucket count: bucket `i` holds observations whose value has
/// bit-width `i` (`v = 0` → bucket 0, `v ∈ [2^(i-1), 2^i)` → bucket `i`,
/// everything at or above `2^62` → bucket 63).
pub const HIST_BUCKETS: usize = 64;

// ---------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------

/// Metric kind discriminant carried in [`MetricRow::kind`].
pub const KIND_COUNTER: u8 = 0;
/// See [`KIND_COUNTER`].
pub const KIND_GAUGE: u8 = 1;
/// See [`KIND_COUNTER`].
pub const KIND_HISTOGRAM: u8 = 2;

/// A monotonic counter: one relaxed add per event.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const — registries are `static`).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    fn row(&self, name: &'static str) -> MetricRow {
        MetricRow {
            name: name.to_string(),
            kind: KIND_COUNTER,
            value: self.get(),
            sum: 0,
            buckets: Vec::new(),
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A last-value gauge (plus saturating dec and high-water max).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge (const — registries are `static`).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero (concurrent inc/dec pairs may
    /// transiently interleave; a gauge must never wrap to 2^64).
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raises the gauge to `v` if `v` is larger — high-water marks.
    pub fn max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    fn row(&self, name: &'static str) -> MetricRow {
        MetricRow {
            name: name.to_string(),
            kind: KIND_GAUGE,
            value: self.get(),
            sum: 0,
            buckets: Vec::new(),
        }
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// A fixed-bucket log₂ latency histogram: 64 buckets by bit-width, plus
/// a running sum and count. One relaxed add (plus two for sum/count) per
/// observation; quantiles are derived from the buckets at read time.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// Bucket index of a value: its bit width, clamped to the last bucket.
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A zeroed histogram (const — registries are `static`).
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the microseconds elapsed since an enabled [`timer`] and
    /// returns them (0 and no record when the timer was disabled).
    pub fn observe_since(&self, t0: Option<Instant>) -> u64 {
        match t0 {
            Some(t0) => {
                let us = t0.elapsed().as_micros() as u64;
                self.record(us);
                us
            }
            None => 0,
        }
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }

    fn row(&self, name: &'static str) -> MetricRow {
        MetricRow {
            name: name.to_string(),
            kind: KIND_HISTOGRAM,
            value: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One registry entry in owned, wire-friendly form. For counters and
/// gauges `value` is the reading; for histograms `value` is the count,
/// `sum` the value sum, and `buckets` the per-bucket counts (log₂
/// buckets, [`bucket_bound`] gives each inclusive upper bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricRow {
    /// Registry name (e.g. `ter_store_fsync_micros`).
    pub name: String,
    /// [`KIND_COUNTER`] | [`KIND_GAUGE`] | [`KIND_HISTOGRAM`].
    pub kind: u8,
    /// Counter/gauge reading, or histogram observation count.
    pub value: u64,
    /// Histogram value sum (0 for counters/gauges).
    pub sum: u64,
    /// Histogram bucket counts (empty for counters/gauges).
    pub buckets: Vec<u64>,
}

impl MetricRow {
    /// Upper-bound estimate of the `q`-quantile (`0 < q <= 1`) from the
    /// log₂ buckets: the bound of the first bucket whose cumulative
    /// count reaches `ceil(q·count)`. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.kind != KIND_HISTOGRAM || self.value == 0 {
            return 0;
        }
        let target = ((q * self.value as f64).ceil() as u64).clamp(1, self.value);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_bound(i);
            }
        }
        bucket_bound(HIST_BUCKETS - 1)
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.value == 0 {
            0.0
        } else {
            self.sum as f64 / self.value as f64
        }
    }

    /// The per-interval row between two snapshots of the same cumulative
    /// metric: counter values, histogram counts/sums, and every bucket
    /// are subtracted element-wise (saturating, so a registry reset
    /// between snapshots yields zeros, not wraparound); gauges keep the
    /// newer reading — a gauge *is* an instantaneous value. Quantiles of
    /// the returned row describe only the interval, which is what a
    /// `--watch` display must show.
    pub fn delta(&self, prev: &MetricRow) -> MetricRow {
        let value = if self.kind == KIND_GAUGE {
            self.value
        } else {
            self.value.saturating_sub(prev.value)
        };
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| b.saturating_sub(prev.buckets.get(i).copied().unwrap_or(0)))
            .collect();
        MetricRow {
            name: self.name.clone(),
            kind: self.kind,
            value,
            sum: self.sum.saturating_sub(prev.sum),
            buckets,
        }
    }
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// Trace-event kinds. `seq`/`a`/`b` are kind-specific coordinates (batch
/// sequence, connection token, sub id, byte counts — see each constant).
pub mod kind {
    /// One served ingest batch; `seq` = wire batch seq, `a` = arrivals.
    pub const BATCH: u8 = 1;
    /// Engine impute stage for one batch; `seq` = engine batch ordinal.
    pub const IMPUTE: u8 = 2;
    /// Engine traverse stage (grid maintenance + shard traversal waits).
    pub const TRAVERSE: u8 = 3;
    /// Engine refine stage (cascade over examined candidates).
    pub const REFINE: u8 = 4;
    /// Engine merge stage (window/result/statistics updates).
    pub const MERGE: u8 = 5;
    /// WAL append; `seq` = batch seq, `a` = frame bytes.
    pub const WAL_APPEND: u8 = 6;
    /// WAL group-commit fsync; `seq` = durable seq after, `a` = batches
    /// the sync covered.
    pub const FSYNC: u8 = 7;
    /// Checkpoint write; `seq` = stamped WAL position.
    pub const CHECKPOINT: u8 = 8;
    /// Connection admitted; `a` = connection token.
    pub const CONN_OPEN: u8 = 9;
    /// Connection dropped; `a` = connection token.
    pub const CONN_CLOSE: u8 = 10;
    /// Standing-query push; `seq` = batch position, `a` = sub id, `b` =
    /// added+retracted rows.
    pub const NOTIFY: u8 = 11;
    /// Subscriber shed (lag or dead peer); `seq` = resync position,
    /// `a` = sub id.
    pub const SHED: u8 = 12;
    /// Backpressure rejection (Busy/IngestBusy); `a` = connection token.
    pub const BUSY: u8 = 13;
    /// One-shot pattern query; `seq` = engine position, `a` = planned
    /// atoms, `b` = result rows.
    pub const QUERY: u8 = 14;
    /// One planned atom of a one-shot query; `seq` = engine position,
    /// `a` = atom index in plan order, `b` = bindings alive after it.
    pub const QUERY_ATOM: u8 = 15;
    /// Step-stage panic (the dump that follows is the post-mortem).
    pub const PANIC: u8 = 16;
    /// Delta-checkpoint write; `seq` = stamped WAL position, `a` = file
    /// bytes, `b` = chain length after the write.
    pub const DELTA: u8 = 17;

    /// Stable text name of a kind (dump format + CLI).
    pub fn name(k: u8) -> &'static str {
        match k {
            BATCH => "batch",
            IMPUTE => "impute",
            TRAVERSE => "traverse",
            REFINE => "refine",
            MERGE => "merge",
            WAL_APPEND => "wal_append",
            FSYNC => "fsync",
            CHECKPOINT => "checkpoint",
            CONN_OPEN => "conn_open",
            CONN_CLOSE => "conn_close",
            NOTIFY => "notify",
            SHED => "shed",
            BUSY => "busy",
            QUERY => "query",
            QUERY_ATOM => "query_atom",
            PANIC => "panic",
            DELTA => "delta",
            _ => "unknown",
        }
    }

    /// Inverse of [`name`] (0 for unknown text).
    pub fn from_name(s: &str) -> u8 {
        match s {
            "batch" => BATCH,
            "impute" => IMPUTE,
            "traverse" => TRAVERSE,
            "refine" => REFINE,
            "merge" => MERGE,
            "wal_append" => WAL_APPEND,
            "fsync" => FSYNC,
            "checkpoint" => CHECKPOINT,
            "conn_open" => CONN_OPEN,
            "conn_close" => CONN_CLOSE,
            "notify" => NOTIFY,
            "shed" => SHED,
            "busy" => BUSY,
            "query" => QUERY,
            "query_atom" => QUERY_ATOM,
            "panic" => PANIC,
            "delta" => DELTA,
            _ => 0,
        }
    }
}

/// One structured trace event in the flight ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the process's observability epoch.
    pub ts_micros: u64,
    /// A [`kind`] constant.
    pub kind: u8,
    /// Kind-specific primary coordinate (usually a batch sequence).
    pub seq: u64,
    /// Kind-specific (connection token, sub id, byte count, …).
    pub a: u64,
    /// Kind-specific secondary payload.
    pub b: u64,
    /// Duration of the traced operation, microseconds (0 for point
    /// events).
    pub dur_micros: u64,
}

/// The bounded ring behind the global flight recorder. Public so tests
/// (and embedders) can exercise wrap-around on a private instance.
#[derive(Debug)]
pub struct FlightRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Slot the next event lands in once the ring is full.
    next: usize,
    /// Events ever recorded (so a snapshot can say how many were lost).
    total: u64,
}

impl FlightRing {
    /// An empty ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::new(),
            capacity: capacity.max(1),
            next: 0,
            total: 0,
        }
    }

    /// Records one event, overwriting the oldest once full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// The retained events, oldest → newest.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Events ever recorded (≥ retained).
    pub fn total(&self) -> u64 {
        self.total
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.total = 0;
    }
}

// ---------------------------------------------------------------------
// The global registry
// ---------------------------------------------------------------------

macro_rules! registry {
    ($($(#[$m:meta])* $field:ident : $ty:ident = $name:literal,)*) => {
        /// Every named metric in the process, one struct field each. All
        /// fields are const-initialized atomics, so the registry is a
        /// plain `static` — no lazy init on the hot path.
        #[derive(Debug, Default)]
        pub struct Registry {
            $($(#[$m])* pub $field: $ty,)*
        }

        impl Registry {
            /// A zeroed registry (const).
            pub const fn new() -> Self {
                Self { $($field: $ty::new(),)* }
            }

            /// Owned rows for every metric, in declaration order.
            pub fn snapshot(&self) -> Vec<MetricRow> {
                vec![ $( self.$field.row($name), )* ]
            }

            /// Zeroes every metric (tests and `metrics --watch` deltas
            /// are computed client-side; the daemon never resets).
            pub fn reset(&self) {
                $( self.$field.reset(); )*
            }
        }
    };
}

registry! {
    /// Batches stepped by the sharded engine (any drive mode).
    engine_batches: Counter = "ter_engine_batches_total",
    /// Impute-stage wall time per batch.
    engine_impute_micros: Histogram = "ter_engine_impute_micros",
    /// Traverse-stage wall time per batch (grid ops + surfaced waits).
    engine_traverse_micros: Histogram = "ter_engine_traverse_micros",
    /// Refine-stage wall time per batch (candidate selection + cascade).
    engine_refine_micros: Histogram = "ter_engine_refine_micros",
    /// Merge-stage wall time per batch (sequential finalize loop).
    engine_merge_micros: Histogram = "ter_engine_merge_micros",
    /// Merge-thread barrier waits per batch (overlapped drive).
    engine_barrier_wait_micros: Histogram = "ter_engine_barrier_wait_micros",
    /// Jobs sitting in the daemon's bounded ordered queue.
    engine_queue_depth: Gauge = "ter_engine_queue_depth",
    /// Bytes appended to the WAL (framed size).
    wal_append_bytes: Counter = "ter_store_wal_append_bytes_total",
    /// WAL append (no fsync) latency.
    wal_append_micros: Histogram = "ter_store_wal_append_micros",
    /// Commit-path fsyncs issued.
    fsyncs: Counter = "ter_store_fsyncs_total",
    /// Commit-path fsync latency.
    fsync_micros: Histogram = "ter_store_fsync_micros",
    /// Flush-window occupancy (pending appends) at each group commit.
    flush_window_batches: Histogram = "ter_store_flush_window_batches",
    /// Checkpoints written.
    checkpoints: Counter = "ter_store_checkpoints_total",
    /// Checkpoint write duration.
    checkpoint_micros: Histogram = "ter_store_checkpoint_micros",
    /// WAL position stamped by the most recent checkpoint.
    last_checkpoint_seq: Gauge = "ter_store_last_checkpoint_seq",
    /// Incremental delta checkpoints written.
    delta_checkpoints: Counter = "ter_store_delta_checkpoints_total",
    /// Bytes written as delta-checkpoint files.
    delta_bytes: Counter = "ter_store_delta_bytes_total",
    /// Links on the current delta chain (0 right after a full
    /// checkpoint — recovery replays the whole chain, so this gauge is
    /// the recovery-time exposure).
    delta_chain_length: Gauge = "ter_store_delta_chain_length",
    /// Connections accepted since start.
    accepts: Counter = "ter_serve_accepts_total",
    /// Live connections (admit/drop balanced — the soak leak detector).
    connections: Gauge = "ter_serve_connections",
    /// Per-poll-event read+frame+parse time on the I/O threads.
    read_parse_micros: Histogram = "ter_serve_read_parse_micros",
    /// Per-call socket write-flush time on the I/O threads.
    write_micros: Histogram = "ter_serve_write_micros",
    /// Backpressure rejections (Busy + IngestBusy + go-back-N gate).
    busy: Counter = "ter_serve_busy_total",
    /// Step-stage wall time per served batch (engine step only).
    step_micros: Histogram = "ter_serve_step_micros",
    /// Appended-but-unfsynced ingest acks (the open flush window).
    unacked_ingests: Gauge = "ter_serve_unacked_ingests",
    /// Standing-query pushes sent.
    notify_events: Counter = "ter_query_notify_events_total",
    /// Rows carried by those pushes (added + retracted).
    notify_rows: Counter = "ter_query_notify_rows_total",
    /// Encoded bytes of Notify frames buffered toward subscribers.
    notify_bytes: Counter = "ter_query_notify_bytes_total",
    /// Subscribers shed for lagging (dead peers pruned silently count
    /// too — both leave the registry).
    shed: Counter = "ter_query_shed_total",
    /// Largest un-drained outbound backlog seen on any notify path.
    backlog_high_water: Gauge = "ter_query_backlog_high_water",
    /// Live standing-query subscriptions.
    subscribers: Gauge = "ter_query_subscribers",
    /// One-shot pattern queries served.
    oneshot_queries: Counter = "ter_query_oneshot_total",
    /// Result rows returned by one-shot queries.
    oneshot_rows: Counter = "ter_query_oneshot_rows_total",
    /// One-shot plan+eval duration.
    eval_micros: Histogram = "ter_query_eval_micros",
}

/// The process-global registry.
pub static OBS: Registry = Registry::new();

static ENABLED: AtomicBool = AtomicBool::new(true);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static FLIGHT: Mutex<Option<FlightRing>> = Mutex::new(None);
static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Whether timing capture and flight recording are on (default: on).
/// Plain counter/gauge/histogram adds are so cheap they are *not* gated;
/// the flag removes the `Instant::now` calls and the ring lock, which is
/// what the metrics-off side of the overhead guard measures.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns timing capture and flight recording on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process's observability epoch (first use).
pub fn epoch_micros() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Starts a stage timer: `Some(now)` when enabled, `None` (free) when
/// not. Pair with [`Histogram::observe_since`].
pub fn timer() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

fn flight_ring() -> MutexGuard<'static, Option<FlightRing>> {
    // A panicking holder cannot corrupt a ring of plain integers: take
    // the poisoned guard and keep recording (the panic dump needs it).
    FLIGHT
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Records one flight event (no-op when disabled). Timestamped here.
pub fn flight(k: u8, seq: u64, a: u64, b: u64, dur_micros: u64) {
    if !enabled() {
        return;
    }
    // Anomalous events mark the moment for the tail sampler: any trace
    // whose lifetime overlaps it is retained unconditionally.
    if matches!(k, kind::PANIC | kind::BUSY | kind::SHED) {
        trace::note_anomaly();
    }
    let ev = TraceEvent {
        ts_micros: epoch_micros(),
        kind: k,
        seq,
        a,
        b,
        dur_micros,
    };
    flight_ring()
        .get_or_insert_with(|| FlightRing::new(FLIGHT_CAPACITY))
        .push(ev);
}

/// The registry as owned rows.
pub fn snapshot() -> Vec<MetricRow> {
    OBS.snapshot()
}

/// The flight ring's retained events, oldest → newest.
pub fn flight_snapshot() -> Vec<TraceEvent> {
    flight_ring().as_ref().map_or(Vec::new(), |r| r.snapshot())
}

/// Zeroes the registry and empties the flight ring (tests only — a live
/// daemon's counters are cumulative by design).
pub fn reset() {
    OBS.reset();
    if let Some(ring) = flight_ring().as_mut() {
        ring.clear();
    }
    trace::reset();
}

// ---------------------------------------------------------------------
// Text exposition
// ---------------------------------------------------------------------

/// Renders the registry + flight ring as the text exposition format:
///
/// ```text
/// # ter_obs dump v1 reason=<reason> uptime_micros=<n>
/// <counter_or_gauge_name> <value>
/// <hist>_count <n>
/// <hist>_sum <n>
/// <hist>_p50 <n>          (p95/p99 likewise; bucket upper bounds)
/// <hist>_bucket{le="<bound>"} <cumulative>   (nonzero buckets + +Inf)
/// # flight ts=<us> kind=<name> seq=<n> a=<n> b=<n> dur=<us>
/// # critical_path traces=<n> total=<us> frontend=<us> … other=<us>
/// # trace seq=<n> start=<us> dur=<us> covered=<n> anomaly=<0|1>
/// # span seq=<n> kind=<name> parent=<name> start=<us> dur=<us>
/// ```
///
/// The trace lines cover the process's own retained traces and
/// cumulative attribution table; [`render_parts`] (remote rows) omits
/// them.
pub fn render(reason: &str) -> String {
    let mut out = render_parts(reason, &snapshot(), &flight_snapshot());
    let (cp, traces) = trace::snapshot();
    render_traces_into(&mut out, &cp, &traces);
    out
}

/// Appends the `# critical_path` / `# trace` / `# span` lines of a
/// trace snapshot to a text exposition (no-op when there is nothing to
/// report).
pub fn render_traces_into(out: &mut String, cp: &trace::CriticalPath, traces: &[trace::Trace]) {
    if cp.traces == 0 && traces.is_empty() {
        return;
    }
    out.push_str(&format!(
        "# critical_path traces={} total={}",
        cp.traces, cp.total_micros
    ));
    for (label, micros) in cp.segments() {
        out.push_str(&format!(" {label}={micros}"));
    }
    out.push('\n');
    for t in traces {
        out.push_str(&format!(
            "# trace seq={} start={} dur={} covered={} anomaly={}\n",
            t.batch_seq, t.start, t.dur, t.covered, t.anomaly as u8
        ));
        for s in &t.spans {
            out.push_str(&format!(
                "# span seq={} kind={} parent={} start={} dur={}\n",
                s.batch_seq,
                trace::kind::name(s.kind),
                trace::kind::name(s.parent),
                s.start,
                s.dur
            ));
        }
    }
}

/// [`render`] over an explicit snapshot (the CLI renders rows it pulled
/// over the wire rather than its own process's registry).
pub fn render_parts(reason: &str, rows: &[MetricRow], flight: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "# ter_obs dump v1 reason={} uptime_micros={}\n",
        reason.split_whitespace().next().unwrap_or("none"),
        epoch_micros()
    ));
    for row in rows {
        match row.kind {
            KIND_HISTOGRAM => {
                out.push_str(&format!("{}_count {}\n", row.name, row.value));
                out.push_str(&format!("{}_sum {}\n", row.name, row.sum));
                for (p, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                    out.push_str(&format!("{}_{} {}\n", row.name, p, row.quantile(q)));
                }
                let mut cum = 0u64;
                for (i, &c) in row.buckets.iter().enumerate() {
                    cum += c;
                    if c == 0 {
                        continue;
                    }
                    let le = if i >= HIST_BUCKETS - 1 {
                        "+Inf".to_string()
                    } else {
                        bucket_bound(i).to_string()
                    };
                    out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {cum}\n", row.name));
                }
            }
            _ => out.push_str(&format!("{} {}\n", row.name, row.value)),
        }
    }
    for ev in flight {
        out.push_str(&format!(
            "# flight ts={} kind={} seq={} a={} b={} dur={}\n",
            ev.ts_micros,
            kind::name(ev.kind),
            ev.seq,
            ev.a,
            ev.b,
            ev.dur_micros
        ));
    }
    out
}

/// A parsed text exposition (see [`parse_dump`]).
#[derive(Debug, Clone, Default)]
pub struct ParsedDump {
    /// The `reason=` field of the header.
    pub reason: String,
    /// The `uptime_micros=` field of the header.
    pub uptime_micros: u64,
    /// Every `name value` sample line, bucket lines included (keyed by
    /// the full `name_bucket{le="…"}` text).
    pub values: BTreeMap<String, u64>,
    /// The `# flight` comment lines, in file order.
    pub flight: Vec<TraceEvent>,
    /// The `# critical_path` attribution table, when the dump had one.
    pub critical_path: Option<trace::CriticalPath>,
    /// The `# trace` lines with their `# span` children, in file order.
    pub traces: Vec<trace::Trace>,
}

impl ParsedDump {
    /// A sample by exact name.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }
}

fn parse_kv(tok: &str, key: &str) -> Option<String> {
    tok.strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .map(str::to_string)
}

/// Parses a text exposition produced by [`render`]. Strict: a malformed
/// sample or flight line is an error (the crash tests use this to prove
/// a pre-kill dump is complete), but unknown comment lines are skipped.
pub fn parse_dump(text: &str) -> Result<ParsedDump, String> {
    let mut dump = ParsedDump::default();
    let mut saw_header = false;
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ter_obs dump v1 ") {
            saw_header = true;
            for tok in rest.split_whitespace() {
                if let Some(v) = parse_kv(tok, "reason") {
                    dump.reason = v;
                } else if let Some(v) = parse_kv(tok, "uptime_micros") {
                    dump.uptime_micros = v
                        .parse()
                        .map_err(|_| format!("line {}: bad uptime", ln + 1))?;
                }
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# flight ") {
            let mut ev = TraceEvent {
                ts_micros: 0,
                kind: 0,
                seq: 0,
                a: 0,
                b: 0,
                dur_micros: 0,
            };
            for tok in rest.split_whitespace() {
                let (key, val) = tok
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: bad flight field {tok:?}", ln + 1))?;
                let num = || {
                    val.parse::<u64>()
                        .map_err(|_| format!("line {}: bad flight value {val:?}", ln + 1))
                };
                match key {
                    "ts" => ev.ts_micros = num()?,
                    "kind" => ev.kind = kind::from_name(val),
                    "seq" => ev.seq = num()?,
                    "a" => ev.a = num()?,
                    "b" => ev.b = num()?,
                    "dur" => ev.dur_micros = num()?,
                    _ => return Err(format!("line {}: unknown flight field {key:?}", ln + 1)),
                }
            }
            dump.flight.push(ev);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# critical_path ") {
            let mut cp = trace::CriticalPath::default();
            for tok in rest.split_whitespace() {
                let (key, val) = tok
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: bad critical_path field {tok:?}", ln + 1))?;
                let num: u64 = val
                    .parse()
                    .map_err(|_| format!("line {}: bad critical_path value {val:?}", ln + 1))?;
                match key {
                    "traces" => cp.traces = num,
                    "total" => cp.total_micros = num,
                    "frontend" => cp.frontend_micros = num,
                    "gate" => cp.gate_micros = num,
                    "queue_wait" => cp.queue_wait_micros = num,
                    "compute" => cp.compute_micros = num,
                    "barrier" => cp.barrier_micros = num,
                    "wal" => cp.wal_micros = num,
                    "fsync_exposed" => cp.fsync_exposed_micros = num,
                    "notify" => cp.notify_micros = num,
                    "write_back" => cp.write_back_micros = num,
                    "other" => cp.other_micros = num,
                    _ => {
                        return Err(format!(
                            "line {}: unknown critical_path field {key:?}",
                            ln + 1
                        ))
                    }
                }
            }
            dump.critical_path = Some(cp);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# trace ") {
            let mut t = trace::Trace {
                batch_seq: 0,
                start: 0,
                dur: 0,
                covered: 0,
                anomaly: false,
                spans: Vec::new(),
            };
            for tok in rest.split_whitespace() {
                let (key, val) = tok
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: bad trace field {tok:?}", ln + 1))?;
                let num = || {
                    val.parse::<u64>()
                        .map_err(|_| format!("line {}: bad trace value {val:?}", ln + 1))
                };
                match key {
                    "seq" => t.batch_seq = num()?,
                    "start" => t.start = num()?,
                    "dur" => t.dur = num()?,
                    "covered" => t.covered = num()?,
                    "anomaly" => t.anomaly = num()? != 0,
                    _ => return Err(format!("line {}: unknown trace field {key:?}", ln + 1)),
                }
            }
            dump.traces.push(t);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# span ") {
            let mut s = trace::Span {
                batch_seq: 0,
                kind: 0,
                parent: 0,
                start: 0,
                dur: 0,
            };
            for tok in rest.split_whitespace() {
                let (key, val) = tok
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: bad span field {tok:?}", ln + 1))?;
                let num = || {
                    val.parse::<u64>()
                        .map_err(|_| format!("line {}: bad span value {val:?}", ln + 1))
                };
                match key {
                    "seq" => s.batch_seq = num()?,
                    "kind" => {
                        s.kind = trace::kind::from_name(val)
                            .ok_or_else(|| format!("line {}: unknown span kind {val:?}", ln + 1))?
                    }
                    "parent" => {
                        s.parent = trace::kind::from_name(val).ok_or_else(|| {
                            format!("line {}: unknown span parent {val:?}", ln + 1)
                        })?
                    }
                    "start" => s.start = num()?,
                    "dur" => s.dur = num()?,
                    _ => return Err(format!("line {}: unknown span field {key:?}", ln + 1)),
                }
            }
            let owner = dump
                .traces
                .iter_mut()
                .rev()
                .find(|t| t.batch_seq == s.batch_seq)
                .ok_or_else(|| {
                    format!(
                        "line {}: span for seq {} without its trace",
                        ln + 1,
                        s.batch_seq
                    )
                })?;
            owner.spans.push(s);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: not a sample: {line:?}", ln + 1))?;
        let value: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad sample value: {line:?}", ln + 1))?;
        dump.values.insert(name.trim().to_string(), value);
    }
    if !saw_header {
        return Err("missing '# ter_obs dump v1' header".into());
    }
    Ok(dump)
}

// ---------------------------------------------------------------------
// Dump-to-file hook
// ---------------------------------------------------------------------

/// Configures where [`dump_now`] writes: a file path, `-` for stdout, or
/// `None` to disable. Set once by the CLI from `--metrics-text`.
pub fn set_dump_path(path: Option<PathBuf>) {
    *DUMP_PATH
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner()) = path;
}

/// Writes the current exposition to the configured dump path (no-op
/// without one). File writes are atomic — tmp then rename — so a
/// SIGKILL mid-dump leaves the previous complete dump, never a torn
/// file. Returns whether a dump was written.
pub fn dump_now(reason: &str) -> bool {
    let path = DUMP_PATH
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clone();
    let Some(path) = path else {
        return false;
    };
    let text = render(reason);
    if path.as_os_str() == "-" {
        let mut stdout = std::io::stdout().lock();
        let _ = stdout.write_all(text.as_bytes());
        let _ = stdout.flush();
        return true;
    }
    let tmp = path.with_extension("obs_tmp");
    let write = || -> std::io::Result<()> {
        std::fs::write(&tmp, text.as_bytes())?;
        std::fs::rename(&tmp, &path)
    };
    match write() {
        Ok(()) => true,
        Err(e) => {
            eprintln!("ter_obs: metrics dump to {} failed: {e}", path.display());
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(3);
        g.sub(4);
        assert_eq!(g.get(), 6);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge dec saturates, never wraps");
        g.max(9);
        g.max(2);
        assert_eq!(g.get(), 9, "high-water keeps the max");
    }

    #[test]
    fn histogram_buckets_are_log2_by_bit_width() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(10), 1023);
        assert_eq!(bucket_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_from_buckets() {
        let h = Histogram::new();
        // 90 fast observations, 10 slow: p50 in the fast bucket, p99 in
        // the slow one.
        for _ in 0..90 {
            h.record(100); // bucket 7, bound 127
        }
        for _ in 0..10 {
            h.record(5000); // bucket 13, bound 8191
        }
        let row = h.row("t");
        assert_eq!(row.value, 100);
        assert_eq!(row.sum, 90 * 100 + 10 * 5000);
        assert_eq!(row.quantile(0.50), 127);
        assert_eq!(row.quantile(0.90), 127);
        assert_eq!(row.quantile(0.95), 8191);
        assert_eq!(row.quantile(0.99), 8191);
        assert!((row.mean() - 590.0).abs() < 1e-9);
        let empty = Histogram::new().row("e");
        assert_eq!(empty.quantile(0.99), 0);
    }

    /// Satellite: ring wrap-around keeps the newest events.
    #[test]
    fn flight_ring_wraparound_keeps_newest() {
        let mut ring = FlightRing::new(4);
        for i in 0..10u64 {
            ring.push(TraceEvent {
                ts_micros: i,
                kind: kind::BATCH,
                seq: i,
                a: 0,
                b: 0,
                dur_micros: 0,
            });
        }
        assert_eq!(ring.total(), 10);
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest→newest, newest retained");
        // Under capacity: insertion order, nothing lost.
        let mut small = FlightRing::new(8);
        for i in 0..3u64 {
            small.push(TraceEvent {
                ts_micros: i,
                kind: kind::FSYNC,
                seq: i,
                a: 0,
                b: 0,
                dur_micros: 0,
            });
        }
        assert_eq!(small.snapshot().len(), 3);
        assert_eq!(small.total(), 3);
    }

    #[test]
    fn render_parse_round_trip() {
        let rows = vec![
            MetricRow {
                name: "ter_x_total".into(),
                kind: KIND_COUNTER,
                value: 12,
                sum: 0,
                buckets: Vec::new(),
            },
            MetricRow {
                name: "ter_y".into(),
                kind: KIND_GAUGE,
                value: 3,
                sum: 0,
                buckets: Vec::new(),
            },
            {
                let h = Histogram::new();
                h.record(100);
                h.record(100);
                h.record(9000);
                h.row("ter_z_micros")
            },
        ];
        let flight = vec![TraceEvent {
            ts_micros: 55,
            kind: kind::FSYNC,
            seq: 8,
            a: 4,
            b: 0,
            dur_micros: 130,
        }];
        let text = render_parts("checkpoint", &rows, &flight);
        let dump = parse_dump(&text).unwrap();
        assert_eq!(dump.reason, "checkpoint");
        assert_eq!(dump.value("ter_x_total"), Some(12));
        assert_eq!(dump.value("ter_y"), Some(3));
        assert_eq!(dump.value("ter_z_micros_count"), Some(3));
        assert_eq!(dump.value("ter_z_micros_sum"), Some(9200));
        assert_eq!(dump.value("ter_z_micros_p50"), Some(127));
        assert_eq!(dump.value("ter_z_micros_p99"), Some(16383));
        assert_eq!(dump.value("ter_z_micros_bucket{le=\"127\"}"), Some(2));
        assert_eq!(dump.flight, flight);

        assert!(parse_dump("no header here\n").is_err());
        let mut bad = text.clone();
        bad.push_str("torn line without value_\n");
        assert!(parse_dump(&bad).is_err(), "malformed samples are rejected");
    }

    #[test]
    fn global_registry_snapshot_and_flight() {
        // The global registry is shared across in-process tests; assert
        // on deltas and structure, not absolutes.
        let before = OBS.fsyncs.get();
        OBS.fsyncs.inc();
        OBS.fsync_micros.record(250);
        flight(kind::FSYNC, 1, 1, 0, 250);
        assert_eq!(OBS.fsyncs.get(), before + 1);
        let rows = snapshot();
        let fsync_row = rows.iter().find(|r| r.name == "ter_store_fsyncs_total");
        assert!(fsync_row.is_some_and(|r| r.kind == KIND_COUNTER && r.value >= 1));
        let hist_row = rows.iter().find(|r| r.name == "ter_store_fsync_micros");
        assert!(hist_row.is_some_and(|r| r.kind == KIND_HISTOGRAM && r.value >= 1));
        assert!(flight_snapshot()
            .iter()
            .any(|e| e.kind == kind::FSYNC && e.dur_micros == 250));
        // Render of the live registry parses.
        let dump = parse_dump(&render("test")).unwrap();
        assert!(dump.value("ter_store_fsyncs_total").unwrap() >= 1);
    }

    #[test]
    fn disabled_mode_skips_timers_and_flight() {
        set_enabled(false);
        assert!(timer().is_none());
        let before = flight_snapshot().len();
        flight(kind::BATCH, 99, 0, 0, 0);
        assert_eq!(flight_snapshot().len(), before, "flight gated off");
        let h = Histogram::new();
        assert_eq!(h.observe_since(timer()), 0);
        assert_eq!(h.count(), 0);
        set_enabled(true);
        assert!(timer().is_some());
    }

    #[test]
    fn dump_now_writes_atomically() {
        let dir = std::env::temp_dir().join(format!("ter_obs_dump_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.txt");
        assert!(!dump_now("none"), "no-op without a configured path");
        set_dump_path(Some(path.clone()));
        OBS.checkpoints.inc();
        assert!(dump_now("checkpoint"));
        let dump = parse_dump(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(dump.reason, "checkpoint");
        assert!(dump.value("ter_store_checkpoints_total").unwrap() >= 1);
        assert!(
            !path.with_extension("obs_tmp").exists(),
            "tmp file renamed away"
        );
        set_dump_path(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The `--watch` delta math: quantiles of a delta row must describe
    /// the interval alone, not the cumulative history.
    #[test]
    fn metric_row_delta_gives_interval_quantiles() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        let first = h.row("x_micros");
        for _ in 0..10 {
            h.record(5000);
        }
        let second = h.row("x_micros");
        // Cumulative quantiles are dominated by the 90 old fast samples…
        assert_eq!(second.quantile(0.50), bucket_bound(bucket_of(100)));
        // …but the interval's delta row sees only the 10 slow ones.
        let d = second.delta(&first);
        assert_eq!(d.value, 10);
        assert_eq!(d.sum, 10 * 5000);
        assert_eq!(d.quantile(0.50), bucket_bound(bucket_of(5000)));
        assert_eq!(d.quantile(0.99), bucket_bound(bucket_of(5000)));
        // Sanity on the counter/gauge arms.
        let c0 = MetricRow {
            name: "c".into(),
            kind: KIND_COUNTER,
            value: 7,
            sum: 0,
            buckets: vec![],
        };
        let c1 = MetricRow {
            value: 12,
            ..c0.clone()
        };
        assert_eq!(c1.delta(&c0).value, 5);
        let g = MetricRow {
            name: "g".into(),
            kind: KIND_GAUGE,
            value: 3,
            sum: 0,
            buckets: vec![],
        };
        assert_eq!(
            g.delta(&g).value,
            3,
            "gauges keep the instantaneous reading"
        );
    }

    /// The span layer end to end: begin/add/fsync-share/end, the
    /// critical-path partition property, tail retention, and the text
    /// round trip. One test (not several) because the pending table and
    /// sampler are process-global.
    #[test]
    fn trace_lifecycle_sampler_and_attribution() {
        set_enabled(true);
        trace::reset();
        use trace::kind as tk;

        // --- one fully-populated trace, exact math ---
        let base = 1_000;
        trace::begin(5_000, base);
        trace::add(5_000, tk::FRONTEND, base, 10);
        trace::add(5_000, tk::GATE, base + 10, 0);
        trace::add(5_000, tk::QUEUE_WAIT, base + 10, 40);
        trace::set_current(5_000);
        trace::add_current(tk::IMPUTE, base + 50, 100);
        trace::add_current(tk::TRAVERSE, base + 150, 300);
        // Two barrier laps accumulate.
        trace::add_current(tk::BARRIER, base + 200, 30);
        trace::add_current(tk::BARRIER, base + 300, 20);
        trace::add_current(tk::REFINE, base + 450, 200);
        trace::add_current(tk::MERGE, base + 650, 100);
        trace::add(5_000, tk::STEP, base + 50, 700);
        trace::clear_current();
        trace::add(5_000, tk::WAL, base + 750, 50);
        trace::fsync_covering(4_997, 4, 400); // shared by 4 batches
        trace::add(5_000, tk::NOTIFY, base + 800, 25);
        trace::add(5_000, tk::WRITE_BACK, base + 1_000, 0); // open marker
        trace::end(5_000, base + 1_100);

        let (cp, traces) = trace::snapshot();
        let t = traces
            .iter()
            .find(|t| t.batch_seq == 5_000)
            .expect("completed trace retained");
        assert_eq!(t.dur, 1_100);
        assert_eq!(t.covered, 4);
        assert_eq!(t.span_dur(tk::BARRIER), 50, "barrier laps accumulate");
        assert_eq!(
            t.span_dur(tk::WRITE_BACK),
            100,
            "open write-back closed at end"
        );
        assert_eq!(t.span_dur(tk::FSYNC), 400);
        assert_eq!(t.spans[0].kind, tk::ROOT);
        assert!(t.spans.iter().all(|s| s.batch_seq == 5_000));
        assert!(
            t.spans
                .iter()
                .all(|s| s.parent == tk::PARENT[s.kind as usize]),
            "span tree parents follow the static table"
        );

        let one = trace::CriticalPath::of(t);
        assert_eq!(one.frontend_micros, 10);
        assert_eq!(one.queue_wait_micros, 40);
        assert_eq!(one.compute_micros, 100 + 300 + 200 + 100 - 50);
        assert_eq!(one.barrier_micros, 50);
        assert_eq!(one.wal_micros, 50);
        assert_eq!(
            one.fsync_exposed_micros,
            400 / 4,
            "fsync amortized over cover"
        );
        assert_eq!(one.notify_micros, 25);
        assert_eq!(one.write_back_micros, 100);
        assert_eq!(
            one.segment_sum(),
            one.total_micros,
            "attribution is a partition of the end-to-end time"
        );
        assert_eq!(cp.delta(&trace::CriticalPath::default()).traces, cp.traces);

        // --- uncovered batches no-op cleanly ---
        trace::add(9_999, tk::WAL, 5, 5); // no begin: ignored
        trace::abandon(5_000); // already ended: ignored

        // --- tail sampling: a full window keeps the K slowest ---
        trace::reset();
        for i in 0..64u64 {
            let start = 10_000 + i * 100;
            trace::begin(i, start);
            // Batches 10 and 42 are the slow tail.
            let dur = if i == 10 || i == 42 { 90 } else { 5 };
            trace::add(i, tk::STEP, start, dur);
            trace::end(i, start + dur);
        }
        let (cp, traces) = trace::snapshot();
        assert_eq!(cp.traces, 64, "every completion folds into the table");
        assert!(traces.len() < 64, "steady-state traffic is sampled out");
        for slow in [10, 42] {
            assert!(
                traces.iter().any(|t| t.batch_seq == slow),
                "slowest traces survive the window"
            );
        }
        assert_eq!(cp.segment_sum(), cp.total_micros);

        // --- anomaly overlap forces retention even for a fast trace ---
        trace::begin(70, trace::now());
        flight(kind::BUSY, 0, 1, 0, 0);
        trace::end(70, trace::now());
        let (_, traces) = trace::snapshot();
        assert!(
            traces.iter().any(|t| t.batch_seq == 70 && t.anomaly),
            "anomaly-overlapping trace retained from the partial window"
        );

        // --- text exposition round trip ---
        let text = render("trace_test");
        let parsed = parse_dump(&text).expect("trace dump parses");
        let cp_parsed = parsed.critical_path.expect("critical_path line present");
        let (cp_now, traces_now) = trace::snapshot();
        assert_eq!(cp_parsed, cp_now);
        assert_eq!(parsed.traces.len(), traces_now.len());
        let t70 = parsed
            .traces
            .iter()
            .find(|t| t.batch_seq == 70)
            .expect("trace 70 in dump");
        assert!(t70.anomaly);
        assert!(!t70.spans.is_empty());

        // --- kill switch: everything no-ops, bit-parity preserved ---
        set_enabled(false);
        assert_eq!(trace::now(), 0);
        trace::begin(500, 123);
        trace::add(500, tk::STEP, 123, 10);
        trace::end(500, 223);
        set_enabled(true);
        let (_, traces) = trace::snapshot();
        assert!(
            traces.iter().all(|t| t.batch_seq != 500),
            "disabled-mode spans must not record"
        );
        trace::reset();
    }
}
