//! The two-source entity-matching dataset generator.
//!
//! Entities are drawn from topic clusters; each source materializes a
//! perturbed copy of its entities, so cross-source copies of the same
//! entity are highly (but not perfectly) similar while unrelated entities
//! overlap only through topic vocabulary. A complete repository `R` is
//! generated from the same distributions for the imputation side, and
//! missing values are injected MAR-style with rate `ξ` over `m` attributes
//! (the knobs of Figures 9/13 and 15/17).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use ter_repo::{Record, Repository, Schema};
use ter_stream::StreamSet;
use ter_text::fxhash::FxHashSet;
use ter_text::{Dictionary, KeywordSet, TokenSet};

/// How one attribute's token set is produced.
#[derive(Debug, Clone, Copy)]
pub enum AttrKind {
    /// A single topic-label token — near-constant within a topic; the
    /// source of constant (editing-rule-style) CDD constraints.
    Category,
    /// `base` tokens shared by every entity of the topic plus `noise`
    /// entity-specific tokens — the source of interval CDD constraints.
    TopicPhrase {
        /// Topic-shared token count.
        base: usize,
        /// Entity-specific token count.
        noise: usize,
    },
    /// `tokens` entity-unique tokens plus one topic token — the
    /// identifying attribute (title/model/name).
    EntityName {
        /// Entity-specific token count.
        tokens: usize,
    },
    /// A long mixture of topic and entity tokens (EBooks' description).
    Description {
        /// Total token count.
        tokens: usize,
    },
}

/// One attribute of the generated schema.
#[derive(Debug, Clone)]
pub struct AttrSpec {
    /// Attribute name.
    pub name: &'static str,
    /// Generation model.
    pub kind: AttrKind,
}

/// Static shape of a dataset (its "schema" in the Table 4 sense).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (paper's label).
    pub name: &'static str,
    /// Attribute models.
    pub attrs: Vec<AttrSpec>,
    /// Number of topic clusters.
    pub topics: usize,
    /// Topic vocabulary size per topic.
    pub vocab_per_topic: usize,
    /// Tuples emitted by source A.
    pub size_a: usize,
    /// Tuples emitted by source B.
    pub size_b: usize,
    /// Fraction of source-B tuples that duplicate a source-A entity.
    pub match_fraction: f64,
    /// Per-token replacement probability when materializing a copy.
    pub perturbation: f64,
}

/// Runtime generation options (the experiment knobs of Table 5).
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Missing rate `ξ`: fraction of stream tuples made incomplete.
    pub missing_rate: f64,
    /// Number of missing attributes `m` per incomplete tuple.
    pub missing_attrs: usize,
    /// Repository size ratio `η` w.r.t. the total stream size.
    pub repo_ratio: f64,
    /// Stream size multiplier (scale experiments down/up).
    pub scale: f64,
    /// Topic-popularity skew exponent. `0.0` (the default) keeps the
    /// original uniform topic draw — and the exact historical RNG
    /// stream, so every existing dataset stays byte-identical. `> 0.0`
    /// draws topics Zipf-style (`P(t) ∝ 1/(t+1)^skew`): a few topics —
    /// and with them a few ER-grid cells — run hot, the
    /// skewed-entity/hot-key shape of production streams.
    pub entity_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenOptions {
    fn default() -> Self {
        Self {
            missing_rate: 0.3,
            missing_attrs: 1,
            repo_ratio: 0.3,
            scale: 1.0,
            entity_skew: 0.0,
            seed: 7,
        }
    }
}

/// One Zipf-ish topic draw: `P(t) ∝ 1/(t+1)^skew`, via inverse-CDF over
/// the (small) topic count. Consumes exactly one RNG draw, like the
/// uniform path it replaces.
fn skewed_topic(rng: &mut StdRng, topics: usize, skew: f64) -> usize {
    let weights: Vec<f64> = (0..topics)
        .map(|t| 1.0 / ((t + 1) as f64).powf(skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (t, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return t;
        }
    }
    topics - 1
}

/// A fully generated dataset.
pub struct Dataset {
    /// Paper-style dataset label.
    pub name: &'static str,
    /// The shared schema.
    pub schema: Schema,
    /// Shared token dictionary.
    pub dict: Dictionary,
    /// The complete repository `R`.
    pub repo: Repository,
    /// The two incomplete streams (missing values injected).
    pub streams: StreamSet,
    /// The same streams before missing-value injection (for Equation-2
    /// ground truth and debugging).
    pub clean_streams: StreamSet,
    /// Same-entity cross-source pairs (construction ground truth).
    pub entity_pairs: FxHashSet<(u64, u64)>,
    /// A suggested topic keyword query: the topic-0 category label plus
    /// two topic-0 vocabulary words.
    pub suggested_keywords: String,
}

impl Dataset {
    /// The keyword set for the suggested query.
    pub fn keywords(&self) -> KeywordSet {
        KeywordSet::parse(&self.suggested_keywords, &self.dict)
    }

    /// Equation-2 ground truth on the *clean* data: cross-source pairs
    /// with `sim > ρ·d` where at least one side matches `keywords`
    /// (the construction the paper uses for Anime/Bikes/EBooks).
    pub fn groundtruth_by_threshold(
        &self,
        rho: f64,
        keywords: &KeywordSet,
    ) -> FxHashSet<(u64, u64)> {
        let d = self.schema.arity() as f64;
        let gamma = rho * d;
        let a = self.clean_streams.stream(0);
        let b = self.clean_streams.stream(1);
        let mut out = FxHashSet::default();
        for ra in a {
            let ta = ra.all_tokens();
            let a_topical = keywords.matches(&ta);
            for rb in b {
                if !a_topical && !keywords.matches(&rb.all_tokens()) {
                    continue;
                }
                if ra.similarity(rb) > gamma {
                    out.insert((ra.id.min(rb.id), ra.id.max(rb.id)));
                }
            }
        }
        out
    }

    /// The paper's ground-truth convention (§6.1): Citations and Songs
    /// ship "actual groundtruth" (here: same-entity pairs), while for
    /// Anime, Bikes, and EBooks "the groundtruth of matching pairs is
    /// based on Equation (2)" (here: the similarity-threshold pairs).
    pub fn paper_groundtruth(&self, rho: f64, keywords: &KeywordSet) -> FxHashSet<(u64, u64)> {
        match self.name {
            "Citations" | "Songs" => self.topical_entity_pairs(keywords),
            _ => self.groundtruth_by_threshold(rho, keywords),
        }
    }

    /// Entity-based ground truth filtered to topic-related pairs.
    pub fn topical_entity_pairs(&self, keywords: &KeywordSet) -> FxHashSet<(u64, u64)> {
        let lookup = |id: u64| -> Option<&Record> {
            self.clean_streams
                .stream(0)
                .iter()
                .chain(self.clean_streams.stream(1))
                .find(|r| r.id == id)
        };
        self.entity_pairs
            .iter()
            .filter(|(a, b)| {
                let ta = lookup(*a).map(|r| keywords.matches(&r.all_tokens()));
                let tb = lookup(*b).map(|r| keywords.matches(&r.all_tokens()));
                ta == Some(true) || tb == Some(true)
            })
            .copied()
            .collect()
    }
}

/// One abstract entity: its topic and per-attribute "true" token sets.
struct Entity {
    topic: usize,
    attrs: Vec<Vec<u32>>, // token indices into the dictionary
}

/// Generates a dataset from a spec and options.
pub fn generate(spec: &DatasetSpec, opts: &GenOptions) -> Dataset {
    assert!(spec.attrs.len() >= 2, "need at least two attributes");
    assert!(
        opts.missing_attrs < spec.attrs.len(),
        "m must leave at least one attribute present"
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut dict = Dictionary::new();
    let schema = Schema::new(
        spec.attrs
            .iter()
            .map(|a| a.name.to_owned())
            .collect::<Vec<_>>(),
    );

    // ---- vocabularies ----
    // Topic vocabularies + per-topic category label.
    let topic_vocab: Vec<Vec<u32>> = (0..spec.topics)
        .map(|t| {
            (0..spec.vocab_per_topic)
                .map(|i| dict.intern(&format!("t{t}w{i}")).0)
                .collect()
        })
        .collect();
    let category_label: Vec<u32> = (0..spec.topics)
        .map(|t| dict.intern(&format!("cat{t}")).0)
        .collect();

    let size_a = ((spec.size_a as f64) * opts.scale).round().max(4.0) as usize;
    let size_b = ((spec.size_b as f64) * opts.scale).round().max(4.0) as usize;
    let matched = ((size_b as f64) * spec.match_fraction).round() as usize;
    let n_entities = size_a + (size_b - matched.min(size_b));
    let repo_size = (((size_a + size_b) as f64) * opts.repo_ratio)
        .round()
        .max(8.0) as usize;

    // ---- entities ----
    let mut next_entity_word = 0u64;
    let mut make_entity = |rng: &mut StdRng, dict: &mut Dictionary| -> Entity {
        let topic = if opts.entity_skew > 0.0 {
            skewed_topic(rng, spec.topics, opts.entity_skew)
        } else {
            rng.gen_range(0..spec.topics)
        };
        let tv = &topic_vocab[topic];
        let attrs = spec
            .attrs
            .iter()
            .map(|a| match a.kind {
                AttrKind::Category => vec![category_label[topic]],
                AttrKind::TopicPhrase { base, noise } => {
                    let mut toks: Vec<u32> = tv[..base.min(tv.len())].to_vec();
                    for _ in 0..noise {
                        toks.push(tv[rng.gen_range(0..tv.len())]);
                    }
                    toks
                }
                AttrKind::EntityName { tokens } => {
                    // Real titles/names vary in length; the variance is
                    // what gives the token-size similarity bound
                    // (Lemma 4.1) its pruning power.
                    let n = rng.gen_range(tokens.saturating_sub(2).max(1)..=tokens + 2);
                    let mut toks = Vec::with_capacity(n + 1);
                    for _ in 0..n {
                        let w = dict.intern(&format!("e{next_entity_word}")).0;
                        next_entity_word += 1;
                        toks.push(w);
                    }
                    toks.push(tv[rng.gen_range(0..tv.len())]);
                    toks
                }
                AttrKind::Description { tokens } => {
                    let n = rng
                        .gen_range(tokens.saturating_sub(tokens / 3).max(2)..=tokens + tokens / 3);
                    let mut toks = Vec::with_capacity(n);
                    for i in 0..n {
                        if i % 3 == 0 {
                            let w = dict.intern(&format!("e{next_entity_word}")).0;
                            next_entity_word += 1;
                            toks.push(w);
                        } else {
                            toks.push(tv[rng.gen_range(0..tv.len())]);
                        }
                    }
                    toks
                }
            })
            .collect();
        Entity { topic, attrs }
    };

    let entities: Vec<Entity> = (0..n_entities)
        .map(|_| make_entity(&mut rng, &mut dict))
        .collect();

    // ---- materialize a perturbed copy of an entity ----
    let materialize = |entity: &Entity, id: u64, rng: &mut StdRng| -> Record {
        let attrs = entity
            .attrs
            .iter()
            .enumerate()
            .map(|(j, toks)| {
                let tv = &topic_vocab[entity.topic];
                let perturbed: Vec<ter_text::Token> = toks
                    .iter()
                    .map(|&w| {
                        // The category attribute is never perturbed (it is
                        // the rule-bearing constant).
                        let is_cat = matches!(spec.attrs[j].kind, AttrKind::Category);
                        if !is_cat && rng.gen_bool(spec.perturbation) {
                            ter_text::Token(tv[rng.gen_range(0..tv.len())])
                        } else {
                            ter_text::Token(w)
                        }
                    })
                    .collect();
                Some(TokenSet::new(perturbed))
            })
            .collect();
        Record { id, attrs }
    };

    // ---- streams ----
    // Source A materializes entities 0..size_a; source B re-materializes
    // the first `matched` of them (the shared entities) plus fresh ones.
    // Shared entities appear at similar positions so they co-exist in
    // windows (jitter below typical window sizes).
    let mut stream_a = Vec::with_capacity(size_a);
    for (i, e) in entities.iter().take(size_a).enumerate() {
        stream_a.push(materialize(e, 1 + i as u64, &mut rng));
    }
    let b_base = 1_000_000u64;
    let mut stream_b = Vec::with_capacity(size_b);
    // Positions in B: matched entities keep (jittered) A positions scaled
    // to B's length; fill the rest with fresh entities.
    let mut b_slots: Vec<Option<usize>> = vec![None; size_b]; // entity index
    let step = size_a as f64 / matched.max(1) as f64;
    for k in 0..matched {
        let a_idx = ((k as f64) * step) as usize % size_a;
        let jitter = rng.gen_range(0..8);
        let pos = ((a_idx * size_b) / size_a + jitter).min(size_b - 1);
        // Find the nearest free slot.
        let mut p = pos;
        loop {
            if b_slots[p].is_none() {
                b_slots[p] = Some(a_idx);
                break;
            }
            p = (p + 1) % size_b;
        }
    }
    let mut fresh = size_a; // next unused entity index
    for slot in b_slots.iter_mut() {
        if slot.is_none() {
            *slot = Some(fresh.min(n_entities - 1));
            fresh += 1;
        }
    }
    let mut entity_pairs = FxHashSet::default();
    for (pos, slot) in b_slots.iter().enumerate() {
        let e_idx = slot.unwrap();
        let id = b_base + pos as u64;
        stream_b.push(materialize(&entities[e_idx], id, &mut rng));
        if e_idx < size_a {
            let a_id = 1 + e_idx as u64;
            entity_pairs.insert((a_id.min(id), a_id.max(id)));
        }
    }

    let clean_streams = StreamSet::new(vec![stream_a.clone(), stream_b.clone()]);

    // ---- missing-value injection (MAR): rate ξ, m attributes ----
    let d = spec.attrs.len();
    let inject = |stream: &mut Vec<Record>, rng: &mut StdRng| {
        let n_missing = ((stream.len() as f64) * opts.missing_rate).round() as usize;
        let mut idx: Vec<usize> = (0..stream.len()).collect();
        idx.shuffle(rng);
        for &i in idx.iter().take(n_missing) {
            let mut attrs: Vec<usize> = (0..d).collect();
            attrs.shuffle(rng);
            for &j in attrs.iter().take(opts.missing_attrs) {
                stream[i].attrs[j] = None;
            }
        }
    };
    inject(&mut stream_a, &mut rng);
    inject(&mut stream_b, &mut rng);
    let streams = StreamSet::new(vec![stream_a, stream_b]);

    // ---- repository R: historical copies of the same entity pool ----
    // The paper's R is "collected/inferred by historical stream data", so
    // it contains past records of the *same* entities. Two materialized
    // copies per covered entity give rule discovery the tight same-entity
    // distance buckets (e.g. close authors ⇒ close title) and let
    // imputation recover entity-specific values. Entities that occur in
    // both sources are covered first (historical data is densest where
    // the sources overlap), so growing η directly grows imputation
    // support — the mechanism behind the Figure 14 accuracy trend.
    let mut coverage_order: Vec<usize> = Vec::with_capacity(n_entities);
    let mut seen = vec![false; n_entities];
    for slot in &b_slots {
        let e_idx = slot.unwrap();
        if e_idx < size_a && !seen[e_idx] {
            seen[e_idx] = true;
            coverage_order.push(e_idx);
        }
    }
    for (e_idx, covered_already) in seen.iter().enumerate() {
        if !covered_already {
            coverage_order.push(e_idx);
        }
    }
    // A quarter of the budget goes to twin (duplicate) copies — enough for
    // rule discovery's same-entity distance buckets; the rest maximizes
    // entity coverage, which drives imputation accuracy.
    let twins = (repo_size / 8).max(1);
    let singles = repo_size.saturating_sub(2 * twins);
    let mut repo_recs: Vec<Record> = Vec::with_capacity(repo_size);
    let mut next_repo_id = 2_000_000u64;
    for k in 0..twins {
        let e = &entities[coverage_order[k % coverage_order.len()]];
        repo_recs.push(materialize(e, next_repo_id, &mut rng));
        repo_recs.push(materialize(e, next_repo_id + 1, &mut rng));
        next_repo_id += 2;
    }
    for k in 0..singles {
        let e = &entities[coverage_order[(twins + k) % coverage_order.len()]];
        repo_recs.push(materialize(e, next_repo_id, &mut rng));
        next_repo_id += 1;
    }
    let repo = Repository::from_records(schema.clone(), repo_recs);

    // ---- suggested topic query: topic 0's label + two topic words ----
    let suggested_keywords = "cat0 t0w0 t0w1".to_owned();

    Dataset {
        name: spec.name,
        schema,
        dict,
        repo,
        streams,
        clean_streams,
        entity_pairs,
        suggested_keywords,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DatasetSpec {
        DatasetSpec {
            name: "test",
            attrs: vec![
                AttrSpec {
                    name: "category",
                    kind: AttrKind::Category,
                },
                AttrSpec {
                    name: "name",
                    kind: AttrKind::EntityName { tokens: 3 },
                },
                AttrSpec {
                    name: "tags",
                    kind: AttrKind::TopicPhrase { base: 3, noise: 1 },
                },
            ],
            topics: 3,
            vocab_per_topic: 12,
            size_a: 60,
            size_b: 70,
            match_fraction: 0.5,
            perturbation: 0.1,
        }
    }

    #[test]
    fn sizes_and_ids_are_as_configured() {
        let ds = generate(&small_spec(), &GenOptions::default());
        assert_eq!(ds.streams.stream(0).len(), 60);
        assert_eq!(ds.streams.stream(1).len(), 70);
        // Unique ids across streams.
        let mut ids = FxHashSet::default();
        for r in ds.streams.stream(0).iter().chain(ds.streams.stream(1)) {
            assert!(ids.insert(r.id), "duplicate id {}", r.id);
        }
    }

    #[test]
    fn entity_pairs_count_matches_fraction() {
        let ds = generate(&small_spec(), &GenOptions::default());
        assert_eq!(ds.entity_pairs.len(), 35); // 0.5 × 70
    }

    #[test]
    fn matched_pairs_are_similar_on_clean_data() {
        let ds = generate(&small_spec(), &GenOptions::default());
        let d = ds.schema.arity() as f64;
        let a = ds.clean_streams.stream(0);
        let b = ds.clean_streams.stream(1);
        let mut sims = Vec::new();
        for (ia, ib) in ds.entity_pairs.iter() {
            let ra = a.iter().find(|r| r.id == *ia).unwrap();
            let rb = b.iter().find(|r| r.id == *ib).unwrap();
            sims.push(ra.similarity(rb));
        }
        let avg: f64 = sims.iter().sum::<f64>() / sims.len() as f64;
        assert!(avg > 0.6 * d, "avg matched similarity {avg} too low");
    }

    #[test]
    fn unmatched_pairs_are_dissimilar() {
        let ds = generate(&small_spec(), &GenOptions::default());
        let d = ds.schema.arity() as f64;
        let a = ds.clean_streams.stream(0);
        let b = ds.clean_streams.stream(1);
        let mut worst = 0.0f64;
        let mut count = 0;
        for ra in a.iter().take(20) {
            for rb in b.iter().take(20) {
                let key = (ra.id.min(rb.id), ra.id.max(rb.id));
                if !ds.entity_pairs.contains(&key) {
                    worst = worst.max(ra.similarity(rb));
                    count += 1;
                }
            }
        }
        assert!(count > 0);
        // Non-matches share at most topic vocabulary; the entity-name
        // attribute keeps them below the similarity of true matches.
        assert!(worst < 0.75 * d, "non-match similarity too high: {worst}");
    }

    #[test]
    fn missing_rate_is_respected() {
        let opts = GenOptions {
            missing_rate: 0.4,
            missing_attrs: 2,
            ..GenOptions::default()
        };
        let ds = generate(&small_spec(), &opts);
        for (sid, expected) in [(0usize, 24usize), (1, 28)] {
            let incomplete = ds
                .streams
                .stream(sid)
                .iter()
                .filter(|r| !r.is_complete())
                .count();
            assert_eq!(incomplete, expected, "stream {sid}");
        }
        // Every incomplete tuple misses exactly m attributes.
        for r in ds.streams.stream(0).iter().filter(|r| !r.is_complete()) {
            assert_eq!(r.missing_attrs().len(), 2);
        }
    }

    #[test]
    fn zero_missing_rate_keeps_everything_complete() {
        let opts = GenOptions {
            missing_rate: 0.0,
            ..GenOptions::default()
        };
        let ds = generate(&small_spec(), &opts);
        assert!(ds.streams.stream(0).iter().all(|r| r.is_complete()));
    }

    #[test]
    fn repository_is_complete_and_scaled() {
        let opts = GenOptions {
            repo_ratio: 0.2,
            ..GenOptions::default()
        };
        let ds = generate(&small_spec(), &opts);
        assert_eq!(ds.repo.len(), 26); // 0.2 × 130
        assert!(ds.repo.samples().iter().all(|r| r.is_complete()));
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&small_spec(), &GenOptions::default());
        let b = generate(&small_spec(), &GenOptions::default());
        assert_eq!(a.entity_pairs, b.entity_pairs);
        assert_eq!(a.streams.stream(0), b.streams.stream(0));
    }

    #[test]
    fn threshold_groundtruth_mostly_agrees_with_entities() {
        let ds = generate(&small_spec(), &GenOptions::default());
        let kw = KeywordSet::universe();
        let by_threshold = ds.groundtruth_by_threshold(0.5, &kw);
        let overlap = by_threshold.intersection(&ds.entity_pairs).count();
        assert!(
            overlap as f64 >= 0.8 * ds.entity_pairs.len() as f64,
            "only {overlap}/{} entity pairs exceed the threshold",
            ds.entity_pairs.len()
        );
    }

    #[test]
    fn topical_pairs_are_a_subset() {
        let ds = generate(&small_spec(), &GenOptions::default());
        let kw = ds.keywords();
        let topical = ds.topical_entity_pairs(&kw);
        assert!(topical.len() <= ds.entity_pairs.len());
        assert!(topical.iter().all(|p| ds.entity_pairs.contains(p)));
        // With 3 topics, roughly a third of pairs are topic-0-related.
        assert!(!topical.is_empty());
    }

    #[test]
    fn zero_skew_is_bit_identical_to_the_historical_generator() {
        // The skew knob must not perturb the RNG stream when off: every
        // parity suite and checked-in expectation depends on the
        // default-options datasets staying byte-identical.
        let base = generate(&small_spec(), &GenOptions::default());
        let zero = generate(
            &small_spec(),
            &GenOptions {
                entity_skew: 0.0,
                ..GenOptions::default()
            },
        );
        assert_eq!(base.streams.stream(0), zero.streams.stream(0));
        assert_eq!(base.streams.stream(1), zero.streams.stream(1));
        assert_eq!(base.entity_pairs, zero.entity_pairs);
    }

    #[test]
    fn entity_skew_concentrates_topics() {
        let count_top_topic = |skew: f64| -> usize {
            let ds = generate(
                &small_spec(),
                &GenOptions {
                    entity_skew: skew,
                    ..GenOptions::default()
                },
            );
            // cat0 is topic 0's category label; under skew it dominates.
            let cat0 = ds.dict.lookup("cat0").unwrap();
            ds.clean_streams
                .stream(0)
                .iter()
                .filter(|r| r.attrs[0].as_ref().unwrap().contains(cat0))
                .count()
        };
        let uniform = count_top_topic(0.0);
        let skewed = count_top_topic(1.5);
        assert!(
            skewed > uniform + uniform / 2,
            "skewed head {skewed} should clearly exceed uniform {uniform}"
        );
    }

    #[test]
    fn scale_shrinks_streams() {
        let opts = GenOptions {
            scale: 0.5,
            ..GenOptions::default()
        };
        let ds = generate(&small_spec(), &opts);
        assert_eq!(ds.streams.stream(0).len(), 30);
        assert_eq!(ds.streams.stream(1).len(), 35);
    }
}
