//! The five dataset presets mirroring Table 4 (scaled; see DESIGN.md §4).
//!
//! | preset    | paper source                | sizes (paper) | sizes (ours) |
//! |-----------|-----------------------------|---------------|--------------|
//! | Citations | DBLP ↔ ACM                  | 2,614 / 2,294 | 520 / 460    |
//! | Anime     | MyAnimeList ↔ Anime Planet  | 4,000 / 4,000 | 600 / 600    |
//! | Bikes     | Bikedekho ↔ Bikewale        | 4,786 / 9,003 | 480 / 900    |
//! | EBooks    | iTunes ↔ eBooks             | 6,500 / 14,112| 460 / 1,000  |
//! | Songs     | self-join, 1M songs         | 1M / 1M       | 1,500 / 1,500|
//!
//! Scaling keeps every *relative* property the evaluation depends on:
//! source-size ratios, match density, attribute arity, and token-set
//! geometry (EBooks gets a 36-token description attribute, which makes it
//! the slowest dataset exactly as in Figures 5(b)/6).

use crate::generator::{generate, AttrKind, AttrSpec, Dataset, DatasetSpec, GenOptions};

/// The five evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// DBLP↔ACM citations analog (4 attributes, clean matches).
    Citations,
    /// Anime catalogs analog.
    Anime,
    /// Bike listings analog (asymmetric source sizes).
    Bikes,
    /// EBook stores analog (long description attribute).
    EBooks,
    /// Million-song self-join analog (largest).
    Songs,
}

impl Preset {
    /// All presets in the paper's order.
    pub fn all() -> [Preset; 5] {
        [
            Preset::Citations,
            Preset::Anime,
            Preset::Bikes,
            Preset::EBooks,
            Preset::Songs,
        ]
    }

    /// The paper's dataset label.
    pub fn name(&self) -> &'static str {
        match self {
            Preset::Citations => "Citations",
            Preset::Anime => "Anime",
            Preset::Bikes => "Bikes",
            Preset::EBooks => "EBooks",
            Preset::Songs => "Songs",
        }
    }

    /// The generator spec for this preset.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Preset::Citations => DatasetSpec {
                name: "Citations",
                attrs: vec![
                    AttrSpec {
                        name: "venue",
                        kind: AttrKind::Category,
                    },
                    AttrSpec {
                        name: "title",
                        kind: AttrKind::EntityName { tokens: 5 },
                    },
                    AttrSpec {
                        name: "authors",
                        kind: AttrKind::EntityName { tokens: 3 },
                    },
                    AttrSpec {
                        name: "keywords",
                        kind: AttrKind::TopicPhrase { base: 2, noise: 3 },
                    },
                ],
                topics: 8,
                vocab_per_topic: 24,
                size_a: 520,
                size_b: 460,
                match_fraction: 0.9,
                perturbation: 0.17,
            },
            Preset::Anime => DatasetSpec {
                name: "Anime",
                attrs: vec![
                    AttrSpec {
                        name: "type",
                        kind: AttrKind::Category,
                    },
                    AttrSpec {
                        name: "title",
                        kind: AttrKind::EntityName { tokens: 4 },
                    },
                    AttrSpec {
                        name: "genres",
                        kind: AttrKind::TopicPhrase { base: 2, noise: 2 },
                    },
                    AttrSpec {
                        name: "studio",
                        kind: AttrKind::EntityName { tokens: 2 },
                    },
                ],
                topics: 8,
                vocab_per_topic: 20,
                size_a: 600,
                size_b: 600,
                match_fraction: 0.75,
                perturbation: 0.2,
            },
            Preset::Bikes => DatasetSpec {
                name: "Bikes",
                attrs: vec![
                    AttrSpec {
                        name: "segment",
                        kind: AttrKind::Category,
                    },
                    AttrSpec {
                        name: "model",
                        kind: AttrKind::EntityName { tokens: 4 },
                    },
                    AttrSpec {
                        name: "brand",
                        kind: AttrKind::EntityName { tokens: 2 },
                    },
                    AttrSpec {
                        name: "specs",
                        kind: AttrKind::TopicPhrase { base: 2, noise: 4 },
                    },
                ],
                topics: 8,
                vocab_per_topic: 28,
                size_a: 480,
                size_b: 900,
                match_fraction: 0.5,
                perturbation: 0.2,
            },
            Preset::EBooks => DatasetSpec {
                name: "EBooks",
                attrs: vec![
                    AttrSpec {
                        name: "genre",
                        kind: AttrKind::Category,
                    },
                    AttrSpec {
                        name: "title",
                        kind: AttrKind::EntityName { tokens: 4 },
                    },
                    AttrSpec {
                        name: "author",
                        kind: AttrKind::EntityName { tokens: 2 },
                    },
                    // The paper: "EBooks has significantly larger token
                    // sizes on some attributes (e.g., description)".
                    AttrSpec {
                        name: "description",
                        kind: AttrKind::Description { tokens: 36 },
                    },
                ],
                topics: 8,
                vocab_per_topic: 40,
                size_a: 460,
                size_b: 1000,
                match_fraction: 0.42,
                perturbation: 0.2,
            },
            Preset::Songs => DatasetSpec {
                name: "Songs",
                attrs: vec![
                    AttrSpec {
                        name: "era",
                        kind: AttrKind::Category,
                    },
                    AttrSpec {
                        name: "title",
                        kind: AttrKind::EntityName { tokens: 4 },
                    },
                    AttrSpec {
                        name: "artist",
                        kind: AttrKind::EntityName { tokens: 2 },
                    },
                    AttrSpec {
                        name: "album",
                        kind: AttrKind::TopicPhrase { base: 1, noise: 3 },
                    },
                ],
                topics: 10,
                vocab_per_topic: 24,
                size_a: 1500,
                size_b: 1500,
                match_fraction: 0.65,
                perturbation: 0.2,
            },
        }
    }
}

/// Generates a preset dataset with the given options.
pub fn preset(p: Preset, opts: &GenOptions) -> Dataset {
    generate(&p.spec(), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate_small_scale() {
        let opts = GenOptions {
            scale: 0.1,
            ..GenOptions::default()
        };
        for p in Preset::all() {
            let ds = preset(p, &opts);
            assert!(!ds.streams.stream(0).is_empty(), "{}", p.name());
            assert!(!ds.entity_pairs.is_empty(), "{}", p.name());
            assert!(!ds.repo.is_empty(), "{}", p.name());
        }
    }

    #[test]
    fn ebooks_has_the_largest_token_sets() {
        let opts = GenOptions {
            scale: 0.2,
            ..GenOptions::default()
        };
        let avg_max_tokens = |p: Preset| -> f64 {
            let ds = preset(p, &opts);
            let recs = ds.clean_streams.stream(0);
            let total: usize = recs
                .iter()
                .map(|r| {
                    r.attrs
                        .iter()
                        .map(|a| a.as_ref().unwrap().len())
                        .max()
                        .unwrap()
                })
                .sum();
            total as f64 / recs.len() as f64
        };
        let ebooks = avg_max_tokens(Preset::EBooks);
        for p in [
            Preset::Citations,
            Preset::Anime,
            Preset::Bikes,
            Preset::Songs,
        ] {
            assert!(
                ebooks > 1.5 * avg_max_tokens(p),
                "EBooks should dominate {}",
                p.name()
            );
        }
    }

    #[test]
    fn source_size_ratios_follow_table_4() {
        // Bikes and EBooks have B roughly twice A, like the originals.
        let bikes = Preset::Bikes.spec();
        assert!(bikes.size_b as f64 / bikes.size_a as f64 > 1.5);
        let ebooks = Preset::EBooks.spec();
        assert!(ebooks.size_b as f64 / ebooks.size_a as f64 > 1.8);
        let songs = Preset::Songs.spec();
        assert_eq!(songs.size_a, songs.size_b);
    }

    #[test]
    fn suggested_keywords_are_parseable() {
        let opts = GenOptions {
            scale: 0.1,
            ..GenOptions::default()
        };
        let ds = preset(Preset::Citations, &opts);
        let kw = ds.keywords();
        assert!(!kw.is_empty());
    }
}
