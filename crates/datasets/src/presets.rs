//! The five dataset presets mirroring Table 4 (scaled; see DESIGN.md §4).
//!
//! | preset    | paper source                | sizes (paper) | sizes (ours) |
//! |-----------|-----------------------------|---------------|--------------|
//! | Citations | DBLP ↔ ACM                  | 2,614 / 2,294 | 520 / 460    |
//! | Anime     | MyAnimeList ↔ Anime Planet  | 4,000 / 4,000 | 600 / 600    |
//! | Bikes     | Bikedekho ↔ Bikewale        | 4,786 / 9,003 | 480 / 900    |
//! | EBooks    | iTunes ↔ eBooks             | 6,500 / 14,112| 460 / 1,000  |
//! | Songs     | self-join, 1M songs         | 1M / 1M       | 1,500 / 1,500|
//!
//! Scaling keeps every *relative* property the evaluation depends on:
//! source-size ratios, match density, attribute arity, and token-set
//! geometry (EBooks gets a 36-token description attribute, which makes it
//! the slowest dataset exactly as in Figures 5(b)/6).

use crate::generator::{generate, AttrKind, AttrSpec, Dataset, DatasetSpec, GenOptions};

/// The five evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// DBLP↔ACM citations analog (4 attributes, clean matches).
    Citations,
    /// Anime catalogs analog.
    Anime,
    /// Bike listings analog (asymmetric source sizes).
    Bikes,
    /// EBook stores analog (long description attribute).
    EBooks,
    /// Million-song self-join analog (largest).
    Songs,
}

impl Preset {
    /// All presets in the paper's order.
    pub fn all() -> [Preset; 5] {
        [
            Preset::Citations,
            Preset::Anime,
            Preset::Bikes,
            Preset::EBooks,
            Preset::Songs,
        ]
    }

    /// The paper's dataset label.
    pub fn name(&self) -> &'static str {
        match self {
            Preset::Citations => "Citations",
            Preset::Anime => "Anime",
            Preset::Bikes => "Bikes",
            Preset::EBooks => "EBooks",
            Preset::Songs => "Songs",
        }
    }

    /// The generator spec for this preset.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Preset::Citations => DatasetSpec {
                name: "Citations",
                attrs: vec![
                    AttrSpec {
                        name: "venue",
                        kind: AttrKind::Category,
                    },
                    AttrSpec {
                        name: "title",
                        kind: AttrKind::EntityName { tokens: 5 },
                    },
                    AttrSpec {
                        name: "authors",
                        kind: AttrKind::EntityName { tokens: 3 },
                    },
                    AttrSpec {
                        name: "keywords",
                        kind: AttrKind::TopicPhrase { base: 2, noise: 3 },
                    },
                ],
                topics: 8,
                vocab_per_topic: 24,
                size_a: 520,
                size_b: 460,
                match_fraction: 0.9,
                perturbation: 0.17,
            },
            Preset::Anime => DatasetSpec {
                name: "Anime",
                attrs: vec![
                    AttrSpec {
                        name: "type",
                        kind: AttrKind::Category,
                    },
                    AttrSpec {
                        name: "title",
                        kind: AttrKind::EntityName { tokens: 4 },
                    },
                    AttrSpec {
                        name: "genres",
                        kind: AttrKind::TopicPhrase { base: 2, noise: 2 },
                    },
                    AttrSpec {
                        name: "studio",
                        kind: AttrKind::EntityName { tokens: 2 },
                    },
                ],
                topics: 8,
                vocab_per_topic: 20,
                size_a: 600,
                size_b: 600,
                match_fraction: 0.75,
                perturbation: 0.2,
            },
            Preset::Bikes => DatasetSpec {
                name: "Bikes",
                attrs: vec![
                    AttrSpec {
                        name: "segment",
                        kind: AttrKind::Category,
                    },
                    AttrSpec {
                        name: "model",
                        kind: AttrKind::EntityName { tokens: 4 },
                    },
                    AttrSpec {
                        name: "brand",
                        kind: AttrKind::EntityName { tokens: 2 },
                    },
                    AttrSpec {
                        name: "specs",
                        kind: AttrKind::TopicPhrase { base: 2, noise: 4 },
                    },
                ],
                topics: 8,
                vocab_per_topic: 28,
                size_a: 480,
                size_b: 900,
                match_fraction: 0.5,
                perturbation: 0.2,
            },
            Preset::EBooks => DatasetSpec {
                name: "EBooks",
                attrs: vec![
                    AttrSpec {
                        name: "genre",
                        kind: AttrKind::Category,
                    },
                    AttrSpec {
                        name: "title",
                        kind: AttrKind::EntityName { tokens: 4 },
                    },
                    AttrSpec {
                        name: "author",
                        kind: AttrKind::EntityName { tokens: 2 },
                    },
                    // The paper: "EBooks has significantly larger token
                    // sizes on some attributes (e.g., description)".
                    AttrSpec {
                        name: "description",
                        kind: AttrKind::Description { tokens: 36 },
                    },
                ],
                topics: 8,
                vocab_per_topic: 40,
                size_a: 460,
                size_b: 1000,
                match_fraction: 0.42,
                perturbation: 0.2,
            },
            Preset::Songs => DatasetSpec {
                name: "Songs",
                attrs: vec![
                    AttrSpec {
                        name: "era",
                        kind: AttrKind::Category,
                    },
                    AttrSpec {
                        name: "title",
                        kind: AttrKind::EntityName { tokens: 4 },
                    },
                    AttrSpec {
                        name: "artist",
                        kind: AttrKind::EntityName { tokens: 2 },
                    },
                    AttrSpec {
                        name: "album",
                        kind: AttrKind::TopicPhrase { base: 1, noise: 3 },
                    },
                ],
                topics: 10,
                vocab_per_topic: 24,
                size_a: 1500,
                size_b: 1500,
                match_fraction: 0.65,
                perturbation: 0.2,
            },
        }
    }
}

/// Generates a preset dataset with the given options.
pub fn preset(p: Preset, opts: &GenOptions) -> Dataset {
    generate(&p.spec(), opts)
}

/// Arrival-pattern shape of a [`ScaleProfile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleShape {
    /// Uniform topics, steady arrival rate (the baseline shape).
    Uniform,
    /// Zipf-skewed topic popularity — a few ER-grid cells run hot, the
    /// skewed-entity shape of production key distributions.
    HotKey {
        /// Skew exponent fed to [`GenOptions::entity_skew`].
        skew: f64,
    },
    /// A steady trickle punctuated by large bursts: every `period`-th
    /// batch carries `amplitude ×` the mean batch size, the rest shrink
    /// to keep the long-run rate unchanged.
    Bursty {
        /// Burst size as a multiple of the mean batch size.
        amplitude: usize,
        /// Batches per burst cycle (burst + quiet tail).
        period: usize,
    },
}

/// A production-scale run shape: a preset pushed 10–100× past its Table-4
/// size, with the window sized so ~10⁴–10⁵ tuples are live at once.
/// These drive the incremental-checkpoint experiments (fig. 19): at
/// these window sizes a full snapshot costs tens of megabytes, so
/// checkpoint cost must track *churn*, not window size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleProfile {
    /// Stable profile name (bench JSON + CLI).
    pub name: &'static str,
    /// The Table-4 preset being scaled.
    pub preset: Preset,
    /// Generator scale multiplier.
    pub scale: f64,
    /// Sliding-window capacity the profile is meant to run with.
    pub window: usize,
    /// Arrival/topic shape.
    pub shape: ScaleShape,
}

impl ScaleProfile {
    /// All scale profiles, smallest first.
    pub fn all() -> [ScaleProfile; 4] {
        [
            Self::scale10(),
            Self::scale100(),
            Self::hotkey100(),
            Self::burst100(),
        ]
    }

    /// ~10× EBooks (the token-heaviest preset): ≈ 17.5 k arrivals,
    /// 10⁴-tuple window.
    pub fn scale10() -> Self {
        Self {
            name: "scale10",
            preset: Preset::EBooks,
            scale: 12.0,
            window: 10_000,
            shape: ScaleShape::Uniform,
        }
    }

    /// ~120× Citations: ≈ 117 k arrivals, 10⁵-tuple window.
    pub fn scale100() -> Self {
        Self {
            name: "scale100",
            preset: Preset::Citations,
            scale: 120.0,
            window: 100_000,
            shape: ScaleShape::Uniform,
        }
    }

    /// [`ScaleProfile::scale100`] with hot-key topic skew.
    pub fn hotkey100() -> Self {
        Self {
            name: "hotkey100",
            preset: Preset::Citations,
            scale: 120.0,
            window: 100_000,
            shape: ScaleShape::HotKey { skew: 1.2 },
        }
    }

    /// [`ScaleProfile::scale100`] with bursty arrivals: every 10th batch
    /// is an 8× burst.
    pub fn burst100() -> Self {
        Self {
            name: "burst100",
            preset: Preset::Citations,
            scale: 120.0,
            window: 100_000,
            shape: ScaleShape::Bursty {
                amplitude: 8,
                period: 10,
            },
        }
    }

    /// Looks a profile up by [`ScaleProfile::name`].
    pub fn by_name(name: &str) -> Option<ScaleProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// Generator options for this profile. Starts from `base` (seed,
    /// missing-value knobs) and overrides what the scale demands: the
    /// stream multiplier, the topic skew, and a *small* repository ratio
    /// — at 10⁵ arrivals the Table-4 ratio of 0.3 would spend the whole
    /// run budget building the offline context, and imputation support
    /// needs absolute repository size, not a fixed stream fraction.
    pub fn gen_options(&self, base: GenOptions) -> GenOptions {
        GenOptions {
            scale: self.scale,
            repo_ratio: (60.0 / (self.scale * 100.0)).min(base.repo_ratio),
            entity_skew: match self.shape {
                ScaleShape::HotKey { skew } => skew,
                _ => base.entity_skew,
            },
            ..base
        }
    }

    /// The deterministic batch-size schedule realizing this profile's
    /// arrival shape over `total` arrivals at long-run mean `mean` per
    /// batch. Uniform and hot-key shapes emit constant batches; the
    /// bursty shape alternates `amplitude × mean` bursts with a quiet
    /// tail of shrunken batches, preserving the long-run rate. Sizes are
    /// positive and sum to exactly `total`.
    pub fn batch_sizes(&self, total: usize, mean: usize) -> Vec<usize> {
        let mean = mean.max(1);
        let mut sizes = Vec::new();
        let mut left = total;
        let mut i = 0usize;
        while left > 0 {
            let want = match self.shape {
                ScaleShape::Bursty { amplitude, period } => {
                    let period = period.max(2);
                    if i % period == 0 {
                        mean * amplitude.max(1)
                    } else {
                        // Quiet tail: spread the remaining cycle budget
                        // (period × mean − burst) over period − 1 batches.
                        let cycle = mean * period;
                        let quiet = cycle.saturating_sub(mean * amplitude.max(1));
                        (quiet / (period - 1)).max(1)
                    }
                }
                _ => mean,
            };
            let take = want.min(left);
            sizes.push(take);
            left -= take;
            i += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate_small_scale() {
        let opts = GenOptions {
            scale: 0.1,
            ..GenOptions::default()
        };
        for p in Preset::all() {
            let ds = preset(p, &opts);
            assert!(!ds.streams.stream(0).is_empty(), "{}", p.name());
            assert!(!ds.entity_pairs.is_empty(), "{}", p.name());
            assert!(!ds.repo.is_empty(), "{}", p.name());
        }
    }

    #[test]
    fn ebooks_has_the_largest_token_sets() {
        let opts = GenOptions {
            scale: 0.2,
            ..GenOptions::default()
        };
        let avg_max_tokens = |p: Preset| -> f64 {
            let ds = preset(p, &opts);
            let recs = ds.clean_streams.stream(0);
            let total: usize = recs
                .iter()
                .map(|r| {
                    r.attrs
                        .iter()
                        .map(|a| a.as_ref().unwrap().len())
                        .max()
                        .unwrap()
                })
                .sum();
            total as f64 / recs.len() as f64
        };
        let ebooks = avg_max_tokens(Preset::EBooks);
        for p in [
            Preset::Citations,
            Preset::Anime,
            Preset::Bikes,
            Preset::Songs,
        ] {
            assert!(
                ebooks > 1.5 * avg_max_tokens(p),
                "EBooks should dominate {}",
                p.name()
            );
        }
    }

    #[test]
    fn source_size_ratios_follow_table_4() {
        // Bikes and EBooks have B roughly twice A, like the originals.
        let bikes = Preset::Bikes.spec();
        assert!(bikes.size_b as f64 / bikes.size_a as f64 > 1.5);
        let ebooks = Preset::EBooks.spec();
        assert!(ebooks.size_b as f64 / ebooks.size_a as f64 > 1.8);
        let songs = Preset::Songs.spec();
        assert_eq!(songs.size_a, songs.size_b);
    }

    #[test]
    fn scale_profiles_are_well_formed() {
        for p in ScaleProfile::all() {
            assert!(p.scale >= 10.0, "{}: production scale is ≥10×", p.name);
            assert!(p.window >= 10_000, "{}", p.name);
            assert_eq!(ScaleProfile::by_name(p.name), Some(p));
            let opts = p.gen_options(GenOptions::default());
            assert!(opts.repo_ratio <= 0.05, "{}: repo must stay small", p.name);
            // Batch schedules cover the stream exactly, whatever the shape.
            for total in [0usize, 1, 999, 10_000] {
                let sizes = p.batch_sizes(total, 100);
                assert_eq!(sizes.iter().sum::<usize>(), total, "{}", p.name);
                assert!(sizes.iter().all(|&s| s > 0), "{}", p.name);
            }
        }
        assert_eq!(ScaleProfile::by_name("nope"), None);
    }

    #[test]
    fn bursty_schedule_alternates_bursts_and_trickle() {
        let p = ScaleProfile::burst100();
        let sizes = p.batch_sizes(10_000, 100);
        assert_eq!(sizes[0], 800, "8× burst");
        assert!(
            sizes[1..10].iter().all(|&s| s == 22),
            "quiet tail: {sizes:?}"
        );
        // Long-run rate preserved: one cycle carries ~period × mean.
        let cycle: usize = sizes[..10].iter().sum();
        assert!((900..=1100).contains(&cycle), "cycle {cycle}");
    }

    #[test]
    fn suggested_keywords_are_parseable() {
        let opts = GenOptions {
            scale: 0.1,
            ..GenOptions::default()
        };
        let ds = preset(Preset::Citations, &opts);
        let kw = ds.keywords();
        assert!(!kw.is_empty());
    }
}
