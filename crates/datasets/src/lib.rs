//! Synthetic datasets mirroring the paper's five evaluation datasets
//! (Table 4: Citations, Anime, Bikes, EBooks, Songs).
//!
//! The originals are real-world entity-matching corpora we cannot ship;
//! the generator reproduces the *properties the evaluation depends on*
//! (see DESIGN.md §4): two sources with a controlled fraction of shared
//! entities, topic-clustered vocabularies (so topic-keyword pruning has
//! selectivity), per-attribute token-set geometry (EBooks' long
//! `description` attribute is reproduced so its "largest token sets →
//! slowest" artifact shows up), attribute correlations that make CDD
//! discovery productive, and ground-truth match pairs by construction.
//!
//! Everything is seeded and deterministic.

pub mod generator;
pub mod presets;

pub use generator::{generate, AttrKind, AttrSpec, Dataset, DatasetSpec, GenOptions};
pub use presets::{preset, Preset, ScaleProfile, ScaleShape};

use ter_text::fxhash::FxHashSet;

/// Restricts ground-truth pairs to those whose members co-exist in some
/// count-based window of size `w` under the round-robin arrival order —
/// pairs further apart can never be reported by a windowed method, so they
/// are excluded from the recall denominator (both for our engine and for
/// every baseline, keeping the comparison fair).
pub fn co_window_pairs(
    groundtruth: &FxHashSet<(u64, u64)>,
    arrivals: &[ter_stream::Arrival],
    w: usize,
) -> FxHashSet<(u64, u64)> {
    let mut position = ter_text::fxhash::FxHashMap::default();
    for a in arrivals {
        position.insert(a.record.id, a.timestamp);
    }
    groundtruth
        .iter()
        .filter(|(a, b)| match (position.get(a), position.get(b)) {
            (Some(&ta), Some(&tb)) => ta.abs_diff(tb) < w as u64,
            _ => false,
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::{Record, Schema};
    use ter_stream::StreamSet;
    use ter_text::Dictionary;

    #[test]
    fn co_window_filters_far_pairs() {
        let schema = Schema::new(vec!["a"]);
        let mut dict = Dictionary::new();
        let mk = |id: u64, d: &mut Dictionary| Record::from_texts(&schema, id, &[Some("x")], d);
        // Stream 0: ids 1..=4; stream 1: ids 11..=14 (round robin:
        // 1,11,2,12,3,13,4,14 → timestamps 0..8).
        let s0: Vec<Record> = (1..=4).map(|i| mk(i, &mut dict)).collect();
        let s1: Vec<Record> = (11..=14).map(|i| mk(i, &mut dict)).collect();
        let arrivals = StreamSet::new(vec![s0, s1]).arrivals();
        let gt: FxHashSet<(u64, u64)> = [(1, 11), (1, 14), (4, 11)].into_iter().collect();
        // (1,11): ts 0 vs 1 → within any window ≥ 2.
        // (1,14): ts 0 vs 7 → needs w > 7.
        // (4,11): ts 6 vs 1 → needs w > 5.
        let near = co_window_pairs(&gt, &arrivals, 3);
        assert_eq!(near.len(), 1);
        assert!(near.contains(&(1, 11)));
        let all = co_window_pairs(&gt, &arrivals, 100);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn pairs_with_unknown_ids_are_dropped() {
        let gt: FxHashSet<(u64, u64)> = [(100, 200)].into_iter().collect();
        assert!(co_window_pairs(&gt, &[], 10).is_empty());
    }
}
